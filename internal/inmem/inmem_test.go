package inmem

import (
	"math/rand"
	"testing"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

func testSchema() *data.Schema {
	return data.MustSchema([]data.Attribute{
		{Name: "x", Kind: data.Numeric},
		{Name: "c", Kind: data.Categorical, Cardinality: 3},
	}, 2)
}

func TestBuildSeparableData(t *testing.T) {
	// class = 0 iff x <= 5: one split suffices.
	var tuples []data.Tuple
	for i := 0; i < 100; i++ {
		x := float64(i % 10)
		class := 1
		if x <= 5 {
			class = 0
		}
		tuples = append(tuples, data.Tuple{Values: []float64{x, float64(i % 3)}, Class: class})
	}
	tr := Build(testSchema(), tuples, Config{Method: split.NewGini()})
	if tr.Depth() != 1 {
		t.Fatalf("depth = %d, want 1:\n%s", tr.Depth(), tr)
	}
	crit := tr.Root.Crit
	if crit.Attr != 0 || crit.Threshold != 5 {
		t.Fatalf("root split %+v, want x <= 5", crit)
	}
	for _, tp := range tuples {
		if tr.Classify(tp) != tp.Class {
			t.Fatalf("misclassified %v", tp)
		}
	}
}

func TestBuildPureFamilyIsLeaf(t *testing.T) {
	var tuples []data.Tuple
	for i := 0; i < 50; i++ {
		tuples = append(tuples, data.Tuple{Values: []float64{float64(i), 0}, Class: 1})
	}
	tr := Build(testSchema(), tuples, Config{Method: split.NewGini()})
	if !tr.Root.IsLeaf() || tr.Root.Label != 1 {
		t.Fatalf("pure family should be a single leaf, got:\n%s", tr)
	}
}

func TestBuildEmptyFamily(t *testing.T) {
	tr := Build(testSchema(), nil, Config{Method: split.NewGini()})
	if !tr.Root.IsLeaf() {
		t.Fatal("empty family should be a leaf")
	}
}

func TestBuildMinSplit(t *testing.T) {
	var tuples []data.Tuple
	for i := 0; i < 10; i++ {
		tuples = append(tuples, data.Tuple{Values: []float64{float64(i), 0}, Class: i % 2})
	}
	tr := Build(testSchema(), tuples, Config{Method: split.NewGini(), MinSplit: 100})
	if !tr.Root.IsLeaf() {
		t.Fatal("MinSplit should prevent splitting")
	}
}

func TestBuildMaxDepth(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 2}, 2000, 7)
	tuples, _ := data.ReadAll(src)
	for _, d := range []int{1, 2, 3} {
		tr := Build(src.Schema(), data.CloneTuples(tuples), Config{Method: split.NewGini(), MaxDepth: d})
		if tr.Depth() > d {
			t.Errorf("MaxDepth %d produced depth %d", d, tr.Depth())
		}
	}
	// Negative MaxDepth: always a leaf (sentinel for exhausted budgets).
	tr := Build(src.Schema(), tuples, Config{Method: split.NewGini(), MaxDepth: -1})
	if !tr.Root.IsLeaf() {
		t.Error("negative MaxDepth should produce a leaf")
	}
}

func TestBuildStopAtThreshold(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 2}, 4000, 7)
	tuples, _ := data.ReadAll(src)
	tr := Build(src.Schema(), tuples, Config{
		Method: split.NewGini(), StopThreshold: 1000, StopAtThreshold: true,
	})
	// Every leaf family must have at most... actually: every INTERNAL
	// node must be above the threshold (leaves may be any size).
	var walk func(n *tree.Node) int64
	walk = func(n *tree.Node) int64 {
		var total int64
		for _, c := range n.ClassCounts {
			total += c
		}
		if !n.IsLeaf() {
			if total <= 1000 {
				t.Errorf("internal node with family %d <= threshold", total)
			}
			walk(n.Left)
			walk(n.Right)
		}
		return total
	}
	walk(tr.Root)
}

func TestBuildDeterministic(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 3000, 13)
	tuples, _ := data.ReadAll(src)
	a := Build(src.Schema(), data.CloneTuples(tuples), Config{Method: split.NewGini(), MaxDepth: 5})
	// Shuffled input must give the identical tree (split selection is a
	// pure function of the AVC counts).
	shuffled := data.CloneTuples(tuples)
	data.Shuffle(shuffled, rand.New(rand.NewSource(99)))
	b := Build(src.Schema(), shuffled, Config{Method: split.NewGini(), MaxDepth: 5})
	if !a.Equal(b) {
		t.Fatalf("input order changed the tree: %s", a.Diff(b))
	}
}

func TestBuildClassCountsConsistent(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.1}, 2000, 3)
	tuples, _ := data.ReadAll(src)
	tr := Build(src.Schema(), tuples, Config{Method: split.NewGini(), MaxDepth: 4})
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		if n.IsLeaf() {
			return
		}
		for c := range n.ClassCounts {
			if n.ClassCounts[c] != n.Left.ClassCounts[c]+n.Right.ClassCounts[c] {
				t.Fatalf("class counts not additive at %v", n.Crit)
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(tr.Root)
}

func TestPartition(t *testing.T) {
	tuples := []data.Tuple{
		{Values: []float64{1, 0}, Class: 0},
		{Values: []float64{9, 0}, Class: 1},
		{Values: []float64{2, 0}, Class: 0},
		{Values: []float64{8, 0}, Class: 1},
	}
	crit := split.Split{Found: true, Attr: 0, Kind: data.Numeric, Threshold: 5}
	n := Partition(tuples, crit)
	if n != 2 {
		t.Fatalf("left count = %d, want 2", n)
	}
	for _, tp := range tuples[:n] {
		if tp.Values[0] > 5 {
			t.Errorf("left partition has %v", tp)
		}
	}
	for _, tp := range tuples[n:] {
		if tp.Values[0] <= 5 {
			t.Errorf("right partition has %v", tp)
		}
	}
}

func TestStopBeforeSplitRules(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		total  int64
		depth  int
		counts []int64
		want   bool
	}{
		{"tiny family", Config{}, 1, 0, []int64{1, 0}, true},
		{"min split default", Config{}, 2, 0, []int64{1, 1}, false},
		{"custom min split", Config{MinSplit: 10}, 9, 0, []int64{5, 4}, true},
		{"pure", Config{}, 100, 0, []int64{100, 0}, true},
		{"depth hit", Config{MaxDepth: 3}, 100, 3, []int64{50, 50}, true},
		{"depth ok", Config{MaxDepth: 3}, 100, 2, []int64{50, 50}, false},
		{"threshold stop", Config{StopThreshold: 200, StopAtThreshold: true}, 150, 1, []int64{70, 80}, true},
		{"threshold no stop-mode", Config{StopThreshold: 200}, 150, 1, []int64{70, 80}, false},
	}
	for _, tc := range cases {
		if got := tc.cfg.StopBeforeSplit(tc.total, tc.depth, tc.counts); got != tc.want {
			t.Errorf("%s: StopBeforeSplit = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBuildQuestMethod(t *testing.T) {
	src := gen.MustSource(gen.Config{Function: 7}, 3000, 5)
	tuples, _ := data.ReadAll(src)
	tr := Build(src.Schema(), tuples, Config{Method: split.NewQuestLike(), MaxDepth: 5})
	if tr.Root.IsLeaf() {
		t.Fatal("QUEST found no structure in F7 data")
	}
	rate, err := tr.MisclassificationRate(src)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 0.35 {
		t.Errorf("QUEST tree misclassification %v is implausibly high", rate)
	}
}
