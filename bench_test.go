// Benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (Section 5), plus ablation benches for BOAT's design knobs.
//
// Each figure benchmark executes the corresponding experiment sweep
// (generating the workload, running BOAT and the RainForest baselines,
// verifying that all algorithms produce the identical tree) and reports,
// beyond ns/op:
//
//	boat-s/op, rf-hybrid-s/op, rf-vertical-s/op  summed wall-clock per sweep
//	boat-scans, rf-hybrid-scans, rf-vert-scans   summed database scans
//	speedup-vs-hybrid                            rf-hybrid time / boat time
//
// The sweeps default to a heavily scaled-down configuration so the whole
// suite runs in minutes; set BOAT_BENCH_UNIT (tuples per paper-"million",
// default 10000) and BOAT_BENCH_MAXUNITS (default 6) to rescale, with
// BOAT_BENCH_UNIT=1000000 BOAT_BENCH_MAXUNITS=10 reproducing the paper's
// full 2M-10M setup.
package boat_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"github.com/boatml/boat"
	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/experiments"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/rainforest"
	"github.com/boatml/boat/internal/split"
)

func envInt(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func benchConfig(b *testing.B) experiments.Config {
	b.Helper()
	return experiments.Config{
		Unit:     envInt("BOAT_BENCH_UNIT", 10_000),
		MaxUnits: int(envInt("BOAT_BENCH_MAXUNITS", 6)),
		Seed:     1,
		Dir:      b.TempDir(),
		UseFiles: os.Getenv("BOAT_BENCH_FILES") != "",
	}
}

// reportComparison aggregates a sweep's rows into per-algorithm metrics.
func reportComparison(b *testing.B, rows []experiments.Row) {
	b.Helper()
	secs := map[string]float64{}
	scans := map[string]float64{}
	for _, r := range rows {
		secs[r.Algo] += r.Seconds
		scans[r.Algo] += float64(r.Scans)
	}
	if s := secs["BOAT"]; s > 0 {
		b.ReportMetric(s/float64(b.N), "boat-s/op")
		if h := secs["RF-Hybrid"]; h > 0 {
			b.ReportMetric(h/s, "speedup-vs-hybrid")
		}
	}
	if s := secs["RF-Hybrid"]; s > 0 {
		b.ReportMetric(s/float64(b.N), "rf-hybrid-s/op")
	}
	if s := secs["RF-Vertical"]; s > 0 {
		b.ReportMetric(s/float64(b.N), "rf-vertical-s/op")
	}
	for algo, label := range map[string]string{
		"BOAT": "boat-scans", "RF-Hybrid": "rf-hybrid-scans", "RF-Vertical": "rf-vert-scans",
	} {
		if v, ok := scans[algo]; ok {
			b.ReportMetric(v/float64(b.N), label)
		}
	}
}

func benchFigure(b *testing.B, run func(experiments.Config) ([]experiments.Row, error)) {
	c := benchConfig(b)
	var all []experiments.Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := run(c)
		if err != nil {
			b.Fatal(err)
		}
		all = append(all, rows...)
	}
	b.StopTimer()
	reportComparison(b, all)
}

// --- Figures 4-6: overall construction time versus database size -----------

func BenchmarkFig4OverallF1(b *testing.B) {
	benchFigure(b, func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunScalability("fig4", 1, c)
	})
}

func BenchmarkFig5OverallF6(b *testing.B) {
	benchFigure(b, func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunScalability("fig5", 6, c)
	})
}

func BenchmarkFig6OverallF7(b *testing.B) {
	benchFigure(b, func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunScalability("fig6", 7, c)
	})
}

// --- Figures 7-9: noise sensitivity ----------------------------------------

func BenchmarkFig7NoiseF1(b *testing.B) {
	benchFigure(b, func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunNoise("fig7", 1, c)
	})
}

func BenchmarkFig8NoiseF6(b *testing.B) {
	benchFigure(b, func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunNoise("fig8", 6, c)
	})
}

func BenchmarkFig9NoiseF7(b *testing.B) {
	benchFigure(b, func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunNoise("fig9", 7, c)
	})
}

// --- Figures 10-11: extra non-predictive attributes ------------------------

func BenchmarkFig10ExtraAttrsF1(b *testing.B) {
	benchFigure(b, func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunExtraAttrs("fig10", 1, c)
	})
}

func BenchmarkFig11ExtraAttrsF6(b *testing.B) {
	benchFigure(b, func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunExtraAttrs("fig11", 6, c)
	})
}

// --- Figure 12: split-selection instability --------------------------------

func BenchmarkFig12Instability(b *testing.B) {
	c := benchConfig(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunInstability(c)
		if err != nil {
			b.Fatal(err)
		}
		if !res.BOATExact {
			b.Fatal("exactness lost on the instability dataset")
		}
		b.ReportMetric(float64(res.NearLow), "points-near-19")
		b.ReportMetric(float64(res.NearHigh), "points-near-60")
		b.ReportMetric(float64(res.CoarseNodes), "coarse-nodes")
		b.ReportMetric(float64(res.Failures), "verification-failures")
	}
}

// --- Figures 13-15: dynamic environments -----------------------------------

func benchDynamic(b *testing.B, fig string, kind experiments.DynamicKind) {
	c := benchConfig(b)
	var update, rebuild float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunDynamic(fig, kind, c)
		if err != nil {
			b.Fatal(err)
		}
		// Final cumulative values per curve.
		finals := map[string]float64{}
		for _, r := range rows {
			finals[r.Algo] = r.Seconds
		}
		update += finals["BOAT-Update"] + finals["Chunk-1"]
		rebuild += finals["Rebuild-RF-Hybrid"] + finals["Chunk-2"]
	}
	b.StopTimer()
	b.ReportMetric(update/float64(b.N), "update-cum-s/op")
	b.ReportMetric(rebuild/float64(b.N), "compare-cum-s/op")
	if update > 0 && kind != experiments.DynamicChunkSize {
		b.ReportMetric(rebuild/update, "rebuild-over-update")
	}
}

func BenchmarkFig13DynamicStable(b *testing.B) {
	benchDynamic(b, "fig13", experiments.DynamicStable)
}

func BenchmarkFig14DynamicChange(b *testing.B) {
	benchDynamic(b, "fig14", experiments.DynamicChange)
}

func BenchmarkFig15DynamicSmall(b *testing.B) {
	benchDynamic(b, "fig15", experiments.DynamicChunkSize)
}

// --- Exactness and the non-impurity method (Section 5 remarks) -------------

// BenchmarkExactness measures a single BOAT build including its exactness
// check against the in-memory reference (the §3/§7 guarantee).
func BenchmarkExactness(b *testing.B) {
	unit := envInt("BOAT_BENCH_UNIT", 10_000)
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 4*unit, 3)
	tuples, err := data.ReadAll(src)
	if err != nil {
		b.Fatal(err)
	}
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 6, MinSplit: 50}
	ref := inmem.Build(src.Schema(), tuples, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt, err := core.Build(src, core.Config{
			Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
			SampleSize: int(unit), Seed: int64(i), TempDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !bt.Tree().Equal(ref) {
			b.Fatal("tree differs from reference")
		}
		bt.Close()
	}
}

// BenchmarkNonImpurity runs the BOAT-with-QUEST instantiation the paper
// reports alongside the impurity-based methods.
func BenchmarkNonImpurity(b *testing.B) {
	unit := envInt("BOAT_BENCH_UNIT", 10_000)
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 5*unit, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st iostats.Stats
		bt, err := core.Build(src, core.Config{
			Method: split.NewQuestLike(), MaxDepth: 6, MinSplit: 50,
			SampleSize: int(unit), Seed: 3, Stats: &st, TempDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Scans()), "scans")
		b.ReportMetric(float64(bt.BuildStats().FailedNodes), "failures")
		bt.Close()
	}
}

// --- Ablations (design choices called out in DESIGN.md) --------------------

// BenchmarkAblationBootstrapCount varies b, the number of bootstrap
// repetitions: more repetitions widen the confidence intervals (bigger
// stuck sets) but reduce interval escapes.
func BenchmarkAblationBootstrapCount(b *testing.B) {
	unit := envInt("BOAT_BENCH_UNIT", 10_000)
	src := gen.MustSource(gen.Config{Function: 7, Noise: 0.05}, 5*unit, 5)
	for _, trees := range []int{5, 10, 20, 40} {
		b.Run(strconv.Itoa(trees), func(b *testing.B) {
			var stuck, failures float64
			for i := 0; i < b.N; i++ {
				bt, err := core.Build(src, core.Config{
					Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
					SampleSize: int(unit), BootstrapTrees: trees,
					Seed: 3, TempDir: b.TempDir(),
				})
				if err != nil {
					b.Fatal(err)
				}
				st := bt.BuildStats()
				stuck += float64(st.StuckTuples)
				failures += float64(st.FailedNodes)
				bt.Close()
			}
			b.ReportMetric(stuck/float64(b.N), "stuck-tuples")
			b.ReportMetric(failures/float64(b.N), "failures")
		})
	}
}

// BenchmarkAblationSampleSize varies |D'|: larger samples produce deeper
// coarse trees (fewer frontier rebuilds) at higher sampling-phase cost.
func BenchmarkAblationSampleSize(b *testing.B) {
	unit := envInt("BOAT_BENCH_UNIT", 10_000)
	src := gen.MustSource(gen.Config{Function: 2, Noise: 0.05}, 6*unit, 9)
	for _, frac := range []int{20, 10, 5, 2} { // sample = n/frac
		b.Run("n_over_"+strconv.Itoa(frac), func(b *testing.B) {
			var coarse float64
			for i := 0; i < b.N; i++ {
				bt, err := core.Build(src, core.Config{
					Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
					SampleSize: int(6*unit) / frac,
					Seed:       3, TempDir: b.TempDir(),
				})
				if err != nil {
					b.Fatal(err)
				}
				coarse += float64(bt.BuildStats().CoarseNodes)
				bt.Close()
			}
			b.ReportMetric(coarse/float64(b.N), "coarse-nodes")
		})
	}
}

// BenchmarkAblationBuckets varies the discretization budget: tighter
// budgets risk lower-bound false alarms (verification failures).
func BenchmarkAblationBuckets(b *testing.B) {
	unit := envInt("BOAT_BENCH_UNIT", 10_000)
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 5*unit, 11)
	for _, budget := range []int{2, 8, 32, 128} {
		b.Run(strconv.Itoa(budget), func(b *testing.B) {
			var failures float64
			for i := 0; i < b.N; i++ {
				bt, err := core.Build(src, core.Config{
					Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
					SampleSize: int(unit), BucketBudget: budget,
					Seed: 3, TempDir: b.TempDir(),
				})
				if err != nil {
					b.Fatal(err)
				}
				failures += float64(bt.BuildStats().FailedNodes)
				bt.Close()
			}
			b.ReportMetric(failures/float64(b.N), "failures")
		})
	}
}

// BenchmarkAblationSpill varies the in-memory tuple budget, trading
// memory for temp-file traffic (the paper's low-memory configuration).
func BenchmarkAblationSpill(b *testing.B) {
	unit := envInt("BOAT_BENCH_UNIT", 10_000)
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 5*unit, 13)
	for _, budget := range []int64{0, 4 * 10_000, 10_000, 1000} {
		b.Run(strconv.FormatInt(budget, 10), func(b *testing.B) {
			var spilled float64
			for i := 0; i < b.N; i++ {
				var st iostats.Stats
				bt, err := core.Build(src, core.Config{
					Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
					SampleSize: int(unit), MemBudgetTuples: budget,
					Seed: 3, Stats: &st, TempDir: b.TempDir(),
				})
				if err != nil {
					b.Fatal(err)
				}
				spilled += float64(st.SpillTuples())
				bt.Close()
			}
			b.ReportMetric(spilled/float64(b.N), "spilled-tuples")
		})
	}
}

// --- Parallelism sweep ------------------------------------------------------

// BenchmarkBuildParallel builds the same dataset with the Parallelism knob
// at 1, 2, 4 and NumCPU workers. The produced tree is identical at every
// setting (the sub-benchmarks verify it against the sequential build), so
// the only difference is wall-clock: on a multi-core machine the bootstrap
// phase, the sharded cleanup scan and the parallel leaf completion overlap.
func BenchmarkBuildParallel(b *testing.B) {
	unit := envInt("BOAT_BENCH_UNIT", 10_000)
	src := gen.MustSource(gen.Config{Function: 6, Noise: 0.05}, 10*unit, 3)
	cfg := func(p int) core.Config {
		return core.Config{
			Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
			SampleSize: int(unit), Seed: 3, Parallelism: p,
		}
	}
	seq, err := core.Build(src, cfg(1))
	if err != nil {
		b.Fatal(err)
	}
	ref := seq.Tree()
	seq.Close()

	workers := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workers = append(workers, n)
	}
	for _, p := range workers {
		b.Run(fmt.Sprintf("workers=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bt, err := core.Build(src, cfg(p))
				if err != nil {
					b.Fatal(err)
				}
				if !bt.Tree().Equal(ref) {
					b.Fatal("parallel build produced a different tree")
				}
				bt.Close()
			}
			b.ReportMetric(float64(p), "workers")
		})
	}
}

// --- Microbenchmarks of the hot paths ---------------------------------------

// BenchmarkMicroRouteTuples measures the cleanup-scan routing throughput.
func BenchmarkMicroRouteTuples(b *testing.B) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 50_000, 3)
	bt, err := core.Build(src, core.Config{
		Method: split.NewGini(), MaxDepth: 6, MinSplit: 50,
		SampleSize: 10_000, Seed: 1, TempDir: b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer bt.Close()
	chunk := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 10_000, 99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.Insert(chunk); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, err := bt.Delete(chunk); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(10_000, "tuples/op")
}

// BenchmarkMicroClassify measures classification throughput through the
// public API: the per-tuple pointer walk (the seed-era baseline), the
// per-tuple flat walk, and the chunked kernel, across two tree depths and
// two chunk geometries. Sub-benchmark names are
// depth<D>/<pointer|flat|chunk<rows>>; compare tuples/sec and allocs/op
// across them.
func BenchmarkMicroClassify(b *testing.B) {
	src, err := boat.Synthetic(boat.SyntheticConfig{Function: 7, Noise: 0.05}, 30_000, 5)
	if err != nil {
		b.Fatal(err)
	}
	tuples, err := data.ReadAll(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{4, 8} {
		model, err := boat.Grow(src, boat.Options{
			Method: boat.Gini(), MaxDepth: depth, MinSplit: 20, Seed: 1, SampleSize: 5000,
		})
		if err != nil {
			b.Fatal(err)
		}
		tr := model.Tree()
		flat, err := boat.CompileTree(tr)
		if err != nil {
			model.Close()
			b.Fatal(err)
		}
		prefix := fmt.Sprintf("depth%d", tr.Depth())

		b.Run(prefix+"/pointer", func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				_ = tr.Classify(tuples[i%len(tuples)])
			}
			reportTuplesPerSec(b, int64(b.N), time.Since(start))
		})
		b.Run(prefix+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				_ = flat.Classify(tuples[i%len(tuples)])
			}
			reportTuplesPerSec(b, int64(b.N), time.Since(start))
		})
		for _, rows := range []int{64, 1024} {
			b.Run(fmt.Sprintf("%s/chunk%d", prefix, rows), func(b *testing.B) {
				chunks := packChunks(tuples, len(src.Schema().Attributes), rows)
				out := make([]int, rows)
				sc := boat.NewClassifyScratch()
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				var n int64
				for i := 0; i < b.N; i++ {
					ch := chunks[i%len(chunks)]
					flat.ClassifyChunkScratch(ch, out, sc)
					n += int64(ch.Len())
				}
				reportTuplesPerSec(b, n, time.Since(start))
			})
		}
		model.Close()
	}
}

// packChunks transposes the tuples into columnar chunks of the given row
// capacity.
func packChunks(tuples []data.Tuple, width, rows int) []*data.Chunk {
	var chunks []*data.Chunk
	for base := 0; base < len(tuples); base += rows {
		end := base + rows
		if end > len(tuples) {
			end = len(tuples)
		}
		ch := data.NewChunk(width, rows)
		for _, tp := range tuples[base:end] {
			ch.AppendTuple(tp)
		}
		chunks = append(chunks, ch)
	}
	return chunks
}

func reportTuplesPerSec(b *testing.B, tuples int64, elapsed time.Duration) {
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(tuples)/s, "tuples/sec")
	}
}

// BenchmarkMicroPredict measures the full parallel predictor (scan +
// chunked kernels + worker pool) end to end over the same workload.
func BenchmarkMicroPredict(b *testing.B) {
	src, err := boat.Synthetic(boat.SyntheticConfig{Function: 7, Noise: 0.05}, 30_000, 5)
	if err != nil {
		b.Fatal(err)
	}
	model, err := boat.Grow(src, boat.Options{
		Method: boat.Gini(), MaxDepth: 8, MinSplit: 20, Seed: 1, SampleSize: 5000,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer model.Close()
	p, err := boat.NewPredictor(model.Tree(), boat.PredictorOptions{})
	if err != nil {
		b.Fatal(err)
	}
	tuples, err := data.ReadAll(src)
	if err != nil {
		b.Fatal(err)
	}
	mem := data.NewMemSource(src.Schema(), tuples)
	b.ResetTimer()
	start := time.Now()
	var n int64
	for i := 0; i < b.N; i++ {
		res, err := p.Predict(mem)
		if err != nil {
			b.Fatal(err)
		}
		n += res.Tuples
	}
	reportTuplesPerSec(b, n, time.Since(start))
}

// BenchmarkMicroRainForestScan measures one RF level scan for context.
func BenchmarkMicroRainForestScan(b *testing.B) {
	src := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, 50_000, 3)
	g := inmem.Config{Method: split.NewGini(), MaxDepth: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rainforest.Build(src, rainforest.Config{Grow: g}); err != nil {
			b.Fatal(err)
		}
	}
}
