module github.com/boatml/boat

go 1.22
