package boat_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/boatml/boat"
)

// TestPublicAPIEndToEnd drives the complete user-facing surface: schema
// construction, synthetic data, file persistence, growing a model, I/O
// accounting, classification, incremental updates, and the baselines.
func TestPublicAPIEndToEnd(t *testing.T) {
	src, err := boat.Synthetic(boat.SyntheticConfig{Function: 1, Noise: 0.05}, 8000, 42)
	if err != nil {
		t.Fatal(err)
	}

	// Persist to the paper's 40-byte binary format and read back.
	path := filepath.Join(t.TempDir(), "train.boat")
	if _, err := boat.WriteFile(path, src, boat.FormatCompact); err != nil {
		t.Fatal(err)
	}
	file, err := boat.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var io boat.IOStats
	model, err := boat.Grow(file, boat.Options{
		Method:     boat.Gini(),
		MaxDepth:   5,
		MinSplit:   50,
		SampleSize: 2000,
		Seed:       1,
		Stats:      &io,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer model.Close()

	if io.Scans() != 2 {
		t.Errorf("BOAT scans = %d, want 2", io.Scans())
	}

	tree := model.Tree()
	if tree.NumNodes() < 3 {
		t.Fatalf("implausibly small tree:\n%s", tree)
	}
	rate, err := tree.MisclassificationRate(file)
	if err != nil {
		t.Fatal(err)
	}
	if rate > 0.15 {
		t.Errorf("misclassification %v too high for F1 with 5%% noise", rate)
	}

	// The reference and the baselines agree exactly.
	tuples := readAll(t, file)
	ref := boat.GrowInMemory(file.Schema(), tuples, boat.InMemoryOptions{
		Method: boat.Gini(), MaxDepth: 5, MinSplit: 50,
	})
	if !tree.Equal(ref) {
		t.Fatalf("BOAT vs reference: %s", tree.Diff(ref))
	}
	for _, vertical := range []bool{false, true} {
		rf, _, err := boat.GrowRainForest(file, boat.RainForestOptions{
			Grow:             boat.InMemoryOptions{Method: boat.Gini(), MaxDepth: 5, MinSplit: 50},
			AVCBufferEntries: 20000,
			Vertical:         vertical,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rf.Equal(ref) {
			t.Fatalf("RainForest(vertical=%v) vs reference: %s", vertical, rf.Diff(ref))
		}
	}

	// Incremental insert keeps the exactness guarantee.
	chunk, err := boat.Synthetic(boat.SyntheticConfig{Function: 1, Noise: 0.05}, 4000, 43)
	if err != nil {
		t.Fatal(err)
	}
	upd, err := model.Insert(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if upd.TuplesSeen != 4000 {
		t.Errorf("update streamed %d tuples", upd.TuplesSeen)
	}
	combined := append(tuples, readAll(t, chunk)...)
	ref2 := boat.GrowInMemory(file.Schema(), combined, boat.InMemoryOptions{
		Method: boat.Gini(), MaxDepth: 5, MinSplit: 50,
	})
	if got := model.Tree(); !got.Equal(ref2) {
		t.Fatalf("after insert: %s", got.Diff(ref2))
	}
}

func TestPublicAPICustomSchema(t *testing.T) {
	schema, err := boat.NewSchema([]boat.Attribute{
		{Name: "temperature", Kind: boat.Numeric},
		{Name: "weather", Kind: boat.Categorical, Cardinality: 3},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var tuples []boat.Tuple
	for i := 0; i < 600; i++ {
		temp := float64(i % 40)
		class := 0
		if temp > 25 {
			class = 1
		}
		tuples = append(tuples, boat.Tuple{
			Values: []float64{temp, float64(i % 3)},
			Class:  class,
		})
	}
	model, err := boat.Grow(boat.NewMemSource(schema, tuples), boat.Options{
		Method: boat.Entropy(), Seed: 1, SampleSize: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer model.Close()
	tr := model.Tree()
	if got := tr.Classify(boat.Tuple{Values: []float64{10, 0}}); got != 0 {
		t.Errorf("cold day classified as %d", got)
	}
	if got := tr.Classify(boat.Tuple{Values: []float64{35, 1}}); got != 1 {
		t.Errorf("hot day classified as %d", got)
	}
}

func TestPublicAPIQuestMethod(t *testing.T) {
	src, err := boat.Synthetic(boat.SyntheticConfig{Function: 7}, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	model, err := boat.Grow(src, boat.Options{Method: boat.QuestLike(), MaxDepth: 5, Seed: 2, SampleSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer model.Close()
	tuples := readAll(t, src)
	ref := boat.GrowInMemory(src.Schema(), tuples, boat.InMemoryOptions{
		Method: boat.QuestLike(), MaxDepth: 5,
	})
	if got := model.Tree(); !got.Equal(ref) {
		t.Fatalf("quest: %s", got.Diff(ref))
	}
}

func readAll(t *testing.T, src boat.Source) []boat.Tuple {
	t.Helper()
	var out []boat.Tuple
	sc, err := src.Scan()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for {
		batch, err := sc.Next()
		if err != nil {
			break
		}
		for _, tp := range batch {
			out = append(out, tp.Clone())
		}
	}
	return out
}

func TestPublicAPIModelPersistence(t *testing.T) {
	src, err := boat.Synthetic(boat.SyntheticConfig{Function: 1, Noise: 0.05}, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	opt := boat.Options{Method: boat.Gini(), MaxDepth: 5, MinSplit: 100, SampleSize: 1200, Seed: 1}
	model, err := boat.Grow(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer model.Close()

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := boat.LoadModel(&buf, src.Schema(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if !restored.Tree().Equal(model.Tree()) {
		t.Fatal("restored model differs")
	}
	chunk, _ := boat.Synthetic(boat.SyntheticConfig{Function: 1, Noise: 0.05}, 2000, 12)
	if _, err := restored.Insert(chunk); err != nil {
		t.Fatal(err)
	}
	if _, err := model.Insert(chunk); err != nil {
		t.Fatal(err)
	}
	if !restored.Tree().Equal(model.Tree()) {
		t.Fatal("restored model diverged after update")
	}
}

func TestPublicAPIPruneAndEvaluate(t *testing.T) {
	src, err := boat.Synthetic(boat.SyntheticConfig{Function: 1, Noise: 0.15}, 8000, 21)
	if err != nil {
		t.Fatal(err)
	}
	model, err := boat.Grow(src, boat.Options{
		Method: boat.Gini(), MaxDepth: 10, MinSplit: 8, SampleSize: 2000, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer model.Close()
	grown := model.Tree()
	pruned, err := boat.PruneMDL(grown, boat.MDLPruneOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumNodes() >= grown.NumNodes() {
		t.Errorf("MDL did not shrink: %d -> %d", grown.NumNodes(), pruned.NumNodes())
	}
	clean, _ := boat.Synthetic(boat.SyntheticConfig{Function: 1}, 4000, 99)
	m, err := boat.Evaluate(pruned, clean)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy() < 0.9 {
		t.Errorf("pruned accuracy %v", m.Accuracy())
	}
}
