// Package boat is a production-quality Go implementation of BOAT — the
// Bootstrapped Optimistic Algorithm for Tree construction — from
// "BOAT—Optimistic Decision Tree Construction", Gehrke, Ganti,
// Ramakrishnan and Loh, SIGMOD 1999.
//
// BOAT builds the exact same binary decision tree a traditional greedy
// top-down algorithm would build over the full training database, but in
// only two sequential scans (one to draw an in-memory sample, one cleanup
// scan), instead of at least one scan per tree level. A bootstrapped
// sampling phase derives a coarse splitting criterion per node — the
// splitting attribute plus a confidence interval for the split point (or
// the exact splitting subset for categorical attributes) — and the cleanup
// scan gathers exactly the information needed to refine the coarse
// criteria into the final ones and to verify, via a concave-impurity
// lower bound on stamp points, that no better split exists outside them;
// any detected discrepancy triggers a local rebuild, preserving the
// exactness guarantee.
//
// Beyond fast construction, a grown Model supports exact incremental
// maintenance: Insert and Delete stream a chunk down the tree once and are
// guaranteed to leave the model identical to a from-scratch rebuild on the
// modified training database.
//
// # Quick start
//
//	schema, _ := boat.NewSchema([]boat.Attribute{
//		{Name: "age", Kind: boat.Numeric},
//		{Name: "color", Kind: boat.Categorical, Cardinality: 3},
//	}, 2)
//	src := boat.NewMemSource(schema, tuples)
//	model, err := boat.Grow(src, boat.Options{Method: boat.Gini()})
//	if err != nil { ... }
//	defer model.Close()
//	label := model.Tree().Classify(tuple)
//
// The subpackages under internal implement the substrates: the data layer
// (binary tuple files, sampling, spill buffers), split selection
// (impurity-based and QUEST-like methods over AVC-sets), the in-memory
// reference builder, the bootstrapped sampling phase, adaptive
// discretization with stamp-point lower bounds, the BOAT core, and the
// RainForest baselines used by the paper's evaluation.
package boat

import (
	"io"
	"log/slog"
	"math/rand"

	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/eval"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/predict"
	"github.com/boatml/boat/internal/prune"
	"github.com/boatml/boat/internal/rainforest"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
	"github.com/boatml/boat/internal/warehouse"
)

// Data-model types.
type (
	// Schema describes a training database: predictor attributes plus the
	// number of class labels.
	Schema = data.Schema
	// Attribute is one predictor attribute (numeric or categorical).
	Attribute = data.Attribute
	// Kind distinguishes numeric from categorical attributes.
	Kind = data.Kind
	// Tuple is one training record.
	Tuple = data.Tuple
	// Source is a scannable training database; scans may be repeated.
	Source = data.Source
	// Scanner is one sequential pass over a Source.
	Scanner = data.Scanner
	// Format selects the on-disk tuple encoding.
	Format = data.Format
)

// Attribute kinds and file formats.
const (
	Numeric     = data.Numeric
	Categorical = data.Categorical
	// FormatCompact is the paper's 4-bytes-per-field record layout
	// (40 bytes per tuple for the 9-attribute synthetic schema).
	FormatCompact = data.FormatCompact
	// FormatWide stores values as float64.
	FormatWide = data.FormatWide
)

// NewSchema validates and constructs a schema.
func NewSchema(attrs []Attribute, classCount int) (*Schema, error) {
	return data.NewSchema(attrs, classCount)
}

// NewMemSource wraps an in-memory tuple slice as a Source.
func NewMemSource(schema *Schema, tuples []Tuple) Source {
	return data.NewMemSource(schema, tuples)
}

// OpenFile opens a binary dataset file written by WriteFile or the boatgen
// tool.
func OpenFile(path string) (*data.FileSource, error) { return data.OpenFile(path) }

// Open opens a dataset file in either on-disk format — the row formats
// written by WriteFile or the block-compressed columnar format written by
// WriteColumnarFile — sniffing the magic to pick the reader. Columnar
// sources honor Options.PipelineDepth / PipelineWorkers during a Grow.
func Open(path string) (Source, error) { return data.Open(path) }

// WriteColumnarFile materializes a Source into a block-compressed columnar
// dataset file (per-block column segments, small-int encodings, CRC-32C
// checksums and min/max zone maps). blockRows 0 uses the default block
// size.
func WriteColumnarFile(path string, src Source, blockRows int) (int64, error) {
	return data.WriteColFile(path, src, blockRows)
}

// CSV import with schema inference.
type (
	// CSVOptions controls CSV parsing (header, class column, separator).
	CSVOptions = data.CSVOptions
	// CSVDataset is a parsed CSV: schema, tuples and the dictionaries
	// mapping categorical codes and class labels back to strings.
	CSVDataset = data.CSVDataset
)

// ReadCSV parses CSV content, inferring numeric vs categorical columns.
func ReadCSV(r io.Reader, opts CSVOptions) (*CSVDataset, error) { return data.ReadCSV(r, opts) }

// ReadCSVFile parses a CSV file from disk.
func ReadCSVFile(path string, opts CSVOptions) (*CSVDataset, error) {
	return data.ReadCSVFile(path, opts)
}

// WriteFile materializes a Source into a binary dataset file.
func WriteFile(path string, src Source, format Format) (int64, error) {
	return data.WriteFile(path, src, format)
}

// Split selection.
type (
	// Method is a split selection method CL.
	Method = split.Method
	// Split is a splitting criterion (attribute plus predicate).
	Split = split.Split
)

// Gini returns the gini-index (CART-style) split selection method.
func Gini() Method { return split.NewGini() }

// Entropy returns the entropy (C4.5-style) split selection method.
func Entropy() Method { return split.NewEntropy() }

// QuestLike returns the non-impurity-based QUEST-style method referenced
// by Section 5 of the paper: statistically stable attribute selection
// (ANOVA F / chi-squared) with class-mean midpoint split points, verified
// in BOAT by exact recomputation from streaming sufficient statistics.
func QuestLike() Method { return split.NewQuestLike() }

// Trees and models.
type (
	// DecisionTree is an immutable decision tree classifier.
	DecisionTree = tree.Tree
	// Node is one node of a DecisionTree.
	Node = tree.Node
	// Model is a stateful BOAT tree supporting exact incremental Insert
	// and Delete. Materialize the classifier with Model.Tree().
	Model = core.Tree
	// Options configures Grow. The zero value plus a Method is valid:
	// sample sizes, bootstrap parameters and thresholds default to the
	// paper's settings (scaled to the dataset).
	Options = core.Config
	// GrowStats reports what happened during Grow.
	GrowStats = core.BuildStats
	// UpdateStats reports what happened during Insert/Delete.
	UpdateStats = core.UpdateStats
)

// Inference path (see DESIGN.md §13): a compiled struct-of-arrays tree
// layout plus a parallel batch predictor over columnar chunk streams.
type (
	// FlatDecisionTree is the immutable breadth-first struct-of-arrays
	// compilation of a DecisionTree, built for high-throughput serving;
	// its predictions are bit-identical to DecisionTree.Classify.
	FlatDecisionTree = tree.FlatTree
	// Predictor shards columnar chunk streams across a worker pool and
	// classifies them through a FlatDecisionTree.
	Predictor = predict.Predictor
	// PredictorOptions configures NewPredictor; the zero value is valid.
	PredictorOptions = predict.Config
	// Prediction is one Predictor.Predict call's output: per-tuple
	// labels in source order, throughput, and (when requested) a
	// confusion matrix against the source's labels.
	Prediction = predict.Result
	// ClassifyScratch is the reusable per-goroutine scratch of
	// FlatDecisionTree.ClassifyChunkScratch.
	ClassifyScratch = tree.ClassifyScratch
)

// NewClassifyScratch returns an empty chunk-classification scratch for
// FlatDecisionTree.ClassifyChunkScratch.
func NewClassifyScratch() *ClassifyScratch { return tree.NewClassifyScratch() }

// CompileTree flattens a decision tree into the serving layout.
func CompileTree(t *DecisionTree) (*FlatDecisionTree, error) { return tree.Compile(t) }

// NewPredictor compiles the tree and returns a parallel batch predictor
// over it. Predictions are bit-identical across every Parallelism and
// ChunkRows setting.
func NewPredictor(t *DecisionTree, opt PredictorOptions) (*Predictor, error) {
	return predict.New(t, opt)
}

// Storage-resilience types (see DESIGN.md §10). Options.Budget shares one
// spill budget across models; Options.FS swaps the filesystem the spill
// and persistence paths write through; Options.SpillRetry bounds the
// retry-with-backoff applied to transient storage errors.
type (
	// MemBudget is a sharable bound on in-memory buffered tuples;
	// overflow spills to temp files.
	MemBudget = data.MemBudget
	// FS is the filesystem abstraction used for spill and model files.
	FS = data.FS
	// RetryPolicy bounds retries of transient storage errors.
	RetryPolicy = data.RetryPolicy
	// SpillError wraps a storage failure on the spill/persistence path;
	// test with IsSpillError.
	SpillError = data.SpillError
)

// NewMemBudget creates a budget admitting limit buffered tuples (0 =
// unlimited, negative = spill everything).
func NewMemBudget(limit int64) *MemBudget { return data.NewMemBudget(limit) }

// IsSpillError reports whether err came from the spill/persistence path
// (as opposed to a bug or a data error).
func IsSpillError(err error) bool { return data.IsSpillError(err) }

// LiveTempFiles lists the spill/model temp files currently live in this
// process — useful for asserting zero leaks after Close.
func LiveTempFiles() []string { return data.LiveTempFiles() }

// Grow builds a BOAT model over the training database in two scans.
func Grow(src Source, opt Options) (*Model, error) { return core.Build(src, opt) }

// LoadModel restores a model saved with Model.Save. opt must carry the
// same Method and growth options the model was built with (verified via a
// stored fingerprint); resource options (TempDir, MemBudgetTuples, Stats)
// may differ. The restored model resumes exact incremental maintenance.
func LoadModel(r io.Reader, schema *Schema, opt Options) (*Model, error) {
	return core.Load(r, schema, opt)
}

// GrowInMemory runs the classical greedy top-down algorithm (Figure 1 of
// the paper) on an in-memory family — the reference BOAT is guaranteed to
// agree with. The tuple slice is reordered in place.
func GrowInMemory(schema *Schema, tuples []Tuple, opt InMemoryOptions) *DecisionTree {
	return inmem.Build(schema, tuples, opt)
}

// InMemoryOptions are the growth rules of the reference algorithm.
type InMemoryOptions = inmem.Config

// RainForest baselines (used by the paper's evaluation).
type (
	// RainForestOptions configures the RF-Hybrid / RF-Vertical baselines.
	RainForestOptions = rainforest.Config
	// RainForestStats reports a baseline build's cost profile.
	RainForestStats = rainforest.BuildStats
)

// GrowRainForest builds the identical tree with the RainForest
// level-per-scan algorithms (RF-Hybrid, or RF-Vertical when
// opt.Vertical is set).
func GrowRainForest(src Source, opt RainForestOptions) (*DecisionTree, RainForestStats, error) {
	return rainforest.Build(src, opt)
}

// I/O accounting.
type (
	// IOStats accumulates scan/tuple/byte counters; pass one in Options
	// (or RainForestOptions) to measure an algorithm's I/O cost.
	IOStats = iostats.Stats
	// IOSnapshot is an immutable copy of the counters.
	IOSnapshot = iostats.Snapshot
)

// Observability (see DESIGN.md §12). Options.Trace records the build
// lifecycle as a span tree, Options.Metrics collects build counters, and
// Options.Logger receives structured log records. All three are optional;
// when nil every instrumentation point is a no-op.
type (
	// Tracer records builds and updates as hierarchical spans with
	// wall-clock and I/O-delta accounting; export with WriteChromeTrace.
	Tracer = obs.Tracer
	// Span is one traced phase of a build.
	Span = obs.Span
	// MetricsRegistry holds named counters, gauges and histograms updated
	// during builds; export with WriteJSON, WriteProm (Prometheus text
	// exposition) or Publish (expvar).
	MetricsRegistry = obs.Registry
	// LogConfig configures NewLogger (text or JSON, leveled).
	LogConfig = obs.LogConfig
	// LatencyHistogram is a sharded, lock-free latency distribution with
	// quantile estimation; Grow/Insert/Delete and the Predictor record
	// into registry-owned instances (update.latency, predict.latency).
	LatencyHistogram = obs.LatencyHistogram
)

// Live telemetry (see DESIGN.md §16): an embeddable diagnostics HTTP
// server over a MetricsRegistry, plus a background sampler keeping
// runtime gauges and windowed throughput rates fresh.
type (
	// DiagServer serves /metrics (Prometheus text exposition), /healthz,
	// /readyz, /debug/vars and /debug/pprof from a background goroutine.
	DiagServer = obs.Server
	// DiagServerOptions configures StartDiagServer; an empty Addr
	// disables the server entirely (no goroutine, no socket).
	DiagServerOptions = obs.ServerConfig
	// RuntimeSampler periodically samples Go runtime statistics
	// (heap, GC, goroutines) into registry gauges and computes windowed
	// per-second rates over selected counters.
	RuntimeSampler = obs.Sampler
	// RuntimeSamplerOptions configures StartRuntimeSampler.
	RuntimeSamplerOptions = obs.SamplerConfig
)

// StartDiagServer starts the diagnostics HTTP server. Wire a maintained
// Model's readiness with opt.Ready = model.Ready. Returns (nil, nil)
// when opt.Addr is empty; Close is safe on the nil server.
func StartDiagServer(opt DiagServerOptions) (*DiagServer, error) { return obs.StartServer(opt) }

// StartRuntimeSampler starts the background runtime/rate sampler over
// reg. Returns nil (a valid no-op handle) when reg is nil.
func StartRuntimeSampler(reg *MetricsRegistry, opt RuntimeSamplerOptions) *RuntimeSampler {
	return obs.StartSampler(reg, opt)
}

// NewTracer creates a build tracer. Pass the same stats the build uses
// (Options.Stats) so spans report I/O deltas; nil disables I/O deltas.
func NewTracer(stats *IOStats) *Tracer { return obs.NewTracer(stats) }

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewLogger builds the structured logger the commands use (text or JSON
// on w, filtered by cfg.Level); pass it as Options.Logger.
func NewLogger(w io.Writer, cfg LogConfig) (*slog.Logger, error) { return obs.NewLogger(w, cfg) }

// Synthetic workloads (the Agrawal et al. generator of the evaluation).
type (
	// SyntheticConfig selects one of the ten Agrawal classification
	// functions plus noise/extra-attribute options.
	SyntheticConfig = gen.Config
)

// Synthetic returns a deterministic, re-scannable generated training
// database of n tuples. See gen.Config for the workload knobs.
func Synthetic(cfg SyntheticConfig, n, seed int64) (Source, error) {
	return gen.NewSource(cfg, n, seed)
}

// SyntheticSchema returns the generator schema (9 predictor attributes
// plus any extra random ones).
func SyntheticSchema(extraAttrs int) *Schema { return gen.Schema(extraAttrs) }

// SyntheticInstability returns the crafted two-tied-minima dataset of the
// paper's Figure 12, which makes impurity-based split selection unstable
// under resampling.
func SyntheticInstability(n, seed int64) Source { return gen.InstabilitySource(n, seed) }

// Pruning (the growth phase's orthogonal companion; see internal/prune).
type (
	// MDLPruneOptions tunes MDL pruning code lengths.
	MDLPruneOptions = prune.MDLOptions
)

// PruneMDL returns a copy of the tree pruned under a two-part
// minimum-description-length criterion (the standard choice for large
// datasets per the paper's Section 2.1).
func PruneMDL(t *DecisionTree, opt MDLPruneOptions) (*DecisionTree, error) {
	return prune.MDL(t, opt)
}

// PruneReducedError returns a copy of the tree pruned bottom-up against a
// validation set.
func PruneReducedError(t *DecisionTree, validation Source) (*DecisionTree, error) {
	return prune.ReducedError(t, validation)
}

// Evaluation utilities.
type (
	// ConfusionMatrix counts predictions by (actual, predicted) class.
	ConfusionMatrix = eval.ConfusionMatrix
	// FoldResult is one cross-validation fold's outcome.
	FoldResult = eval.FoldResult
	// TreeBuilder grows a tree over a training database (used by
	// CrossValidate).
	TreeBuilder = eval.Builder
)

// Evaluate fills a confusion matrix with the tree's predictions over src.
func Evaluate(t *DecisionTree, src Source) (*ConfusionMatrix, error) {
	return eval.Evaluate(t, src)
}

// CrossValidate runs k-fold cross-validation with the supplied builder.
func CrossValidate(schema *Schema, tuples []Tuple, k int, rng *rand.Rand, build TreeBuilder) ([]FoldResult, error) {
	return eval.CrossValidate(schema, tuples, k, rng, build)
}

// Star-join warehouse (the paper's "mine from any star-join query without
// materializing the training set" scenario; see internal/warehouse).
type StarWarehouse = warehouse.Star

// NewStarWarehouse builds the demo star schema's dimension tables.
func NewStarWarehouse(nCustomers, nProducts int, seed int64) (*StarWarehouse, error) {
	return warehouse.NewStar(nCustomers, nProducts, seed)
}
