// Data-warehouse-scale construction: the training database lives on disk
// in the paper's 40-byte binary record format, too large to assume it fits
// in memory. The example builds the same tree three ways — BOAT, RF-Hybrid
// and RF-Vertical — and contrasts their I/O profiles: BOAT reads the
// database exactly twice, the RainForest baselines once (or more) per tree
// level.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/boatml/boat"
)

const (
	tuples    = 400_000
	threshold = 60_000 // in-memory switch threshold (15% of the data)
)

func main() {
	dir, err := os.MkdirTemp("", "boat-warehouse-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Materialize the warehouse table (Agrawal function 6: a concept over
	// total income and age bands).
	gen, err := boat.Synthetic(boat.SyntheticConfig{Function: 6, Noise: 0.05}, tuples, 3)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "transactions.boat")
	n, err := boat.WriteFile(path, gen, boat.FormatCompact)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("warehouse table: %d tuples, %.1f MB on disk (%d bytes/record)\n\n",
		n, float64(st.Size())/1e6, 40)

	file, err := boat.OpenFile(path)
	if err != nil {
		log.Fatal(err)
	}

	grow := boat.InMemoryOptions{
		Method:          boat.Gini(),
		StopThreshold:   threshold,
		StopAtThreshold: true, // the paper's methodology: stop once a family fits in memory
	}

	// BOAT.
	var boatIO boat.IOStats
	start := time.Now()
	model, err := boat.Grow(file, boat.Options{
		Method:          boat.Gini(),
		StopThreshold:   threshold,
		StopAtThreshold: true,
		Seed:            1,
		Stats:           &boatIO,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()
	boatTree := model.Tree()
	boatTime := time.Since(start)

	report := func(name string, seconds time.Duration, io *boat.IOStats, nodes int) {
		s := io.Snapshot()
		fmt.Printf("%-12s %8v  scans=%-3d tuples-read=%-9d data-read=%.1f MB  tree-nodes=%d\n",
			name, seconds.Round(time.Millisecond), s.Scans, s.TuplesRead,
			float64(s.BytesRead)/1e6, nodes)
	}
	report("BOAT", boatTime, &boatIO, boatTree.NumNodes())

	// RainForest baselines: buffer sized like the paper's (RF-Hybrid's
	// fits the root AVC-group, RF-Vertical's does not).
	for _, cfg := range []struct {
		name     string
		buffer   int64
		vertical bool
	}{
		{"RF-Hybrid", 900_000, false},
		{"RF-Vertical", 350_000, true},
	} {
		var io boat.IOStats
		start := time.Now()
		tr, _, err := boat.GrowRainForest(file, boat.RainForestOptions{
			Grow:             grow,
			AVCBufferEntries: cfg.buffer,
			Vertical:         cfg.vertical,
			Stats:            &io,
		})
		if err != nil {
			log.Fatal(err)
		}
		report(cfg.name, time.Since(start), &io, tr.NumNodes())
		if !tr.Equal(boatTree) {
			log.Fatalf("%s produced a different tree: %s", cfg.name, tr.Diff(boatTree))
		}
	}
	fmt.Println("\nall three algorithms produced the identical tree ✓")
	fmt.Println("\nthe tree (growth stopped once families fit in memory):")
	fmt.Print(boatTree)
}
