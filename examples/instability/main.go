// Instability of impurity-based split selection (the paper's Figure 12):
// a dataset is crafted so the gini impurity has two exactly tied minima
// (at attribute values 19 and 60). Tiny resampling perturbations flip the
// global minimum between them, so bootstrap split points are bimodal —
// coarse-tree growth stops where bootstrap trees disagree, and BOAT falls
// back to its slower (but still exact) paths. The non-impurity QUEST-like
// method selects its split point from smooth statistics and is immune.
//
//	go run ./examples/instability
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/boatml/boat"
)

func main() {
	fmt.Println("The Figure 12 workload: P(class A | x) is 0.9 for x<=19, 0.5 for")
	fmt.Println("20<=x<=60 and 0.1 for x>=61, with segment sizes that make the")
	fmt.Println("splits 'x <= 19' and 'x <= 60' exactly tied in expectation.")
	fmt.Println()

	// Draw bootstrap trees repeatedly and record where each one splits.
	const repetitions = 40
	histogram := map[string]int{}
	for seed := int64(0); seed < repetitions; seed++ {
		tr := bootstrapTree(seed)
		crit := tr.Root.Crit
		switch {
		case !crit.Found:
			histogram["(leaf)"]++
		case crit.Threshold < 40:
			histogram["near 19"]++
		default:
			histogram["near 60"]++
		}
	}
	fmt.Println("root split location across", repetitions, "bootstrap samples (gini):")
	for _, k := range []string{"near 19", "near 60", "(leaf)"} {
		if histogram[k] > 0 {
			fmt.Printf("  %-8s %s (%d)\n", k, strings.Repeat("#", histogram[k]), histogram[k])
		}
	}
	fmt.Println()

	// QUEST-like split points are a smooth function of the data: across
	// the same resamples they barely move.
	var min, max float64
	for seed := int64(0); seed < repetitions; seed++ {
		tr := questTree(seed)
		thr := tr.Root.Crit.Threshold
		if seed == 0 || thr < min {
			min = thr
		}
		if seed == 0 || thr > max {
			max = thr
		}
	}
	fmt.Printf("QUEST-like root split point across the same resamples: [%.2f, %.2f] (spread %.2f)\n",
		min, max, max-min)
	fmt.Println()
	fmt.Println("Despite the instability, BOAT's output is guaranteed exact: its")
	fmt.Println("verification detects whenever the two minima flip and rebuilds the")
	fmt.Println("affected subtree (see TestExactnessInstability in internal/core).")
}

// bootstrapTree builds a depth-1 gini tree on a fresh resample.
func bootstrapTree(seed int64) *boat.DecisionTree {
	return sampleTree(seed, boat.Gini())
}

func questTree(seed int64) *boat.DecisionTree {
	return sampleTree(seed, boat.QuestLike())
}

func sampleTree(seed int64, method boat.Method) *boat.DecisionTree {
	src := boat.SyntheticInstability(40_000, seed)
	tuples := readAll(src)
	return boat.GrowInMemory(src.Schema(), tuples, boat.InMemoryOptions{
		Method:   method,
		MaxDepth: 1,
	})
}

func readAll(src boat.Source) []boat.Tuple {
	var out []boat.Tuple
	sc, err := src.Scan()
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()
	for {
		batch, err := sc.Next()
		if err != nil {
			return out
		}
		for _, tp := range batch {
			out = append(out, tp.Clone())
		}
	}
}
