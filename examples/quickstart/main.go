// Quickstart: define a schema, build a decision tree with BOAT over an
// in-memory training set, inspect it, and classify new records.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/boatml/boat"
)

func main() {
	// A loan-approval toy domain: two numeric and one categorical
	// predictor attribute, two class labels (0 = approve, 1 = reject).
	schema, err := boat.NewSchema([]boat.Attribute{
		{Name: "income", Kind: boat.Numeric},
		{Name: "debt", Kind: boat.Numeric},
		{Name: "region", Kind: boat.Categorical, Cardinality: 4},
	}, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Generate a training set from a hidden concept: reject when debt
	// exceeds half the income, with region 3 held to a stricter rule.
	rng := rand.New(rand.NewSource(7))
	var tuples []boat.Tuple
	for i := 0; i < 20000; i++ {
		income := float64(20000 + rng.Intn(100000))
		debt := float64(rng.Intn(80000))
		region := float64(rng.Intn(4))
		class := 0
		limit := income / 2
		if region == 3 {
			limit = income / 4
		}
		if debt > limit {
			class = 1
		}
		if rng.Float64() < 0.02 { // label noise
			class = 1 - class
		}
		tuples = append(tuples, boat.Tuple{Values: []float64{income, debt, region}, Class: class})
	}

	// Grow the tree. BOAT makes exactly two passes over the data and is
	// guaranteed to produce the same tree as the classical algorithm.
	var io boat.IOStats
	model, err := boat.Grow(boat.NewMemSource(schema, tuples), boat.Options{
		Method:   boat.Gini(),
		MaxDepth: 5,
		MinSplit: 100,
		Seed:     1,
		Stats:    &io,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()

	tree := model.Tree()
	fmt.Printf("built a tree with %d nodes (depth %d) in %d scans over the data\n",
		tree.NumNodes(), tree.Depth(), io.Scans())
	fmt.Println()
	fmt.Println(tree)

	// Classify new applications.
	applications := []struct {
		name   string
		record boat.Tuple
	}{
		{"low debt", boat.Tuple{Values: []float64{80000, 10000, 1}}},
		{"overextended", boat.Tuple{Values: []float64{40000, 35000, 0}}},
		{"borderline in strict region", boat.Tuple{Values: []float64{60000, 20000, 3}}},
	}
	verdicts := []string{"approve", "reject"}
	for _, a := range applications {
		fmt.Printf("%-28s -> %s\n", a.name, verdicts[tree.Classify(a.record)])
	}
}
