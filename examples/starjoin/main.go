// Star-join mining: the paper's data-warehousing scenario (Section 1) —
// the training database is a star-join query over a purchases fact stream
// and customer/product dimension tables, and it is never materialized.
// BOAT needs only sequential scans and a random sample of the join view,
// so it mines the exact decision tree in two streaming passes.
//
// The example then prunes the grown tree (MDL and reduced-error) and
// cross-validates the fraud classifier.
//
//	go run ./examples/starjoin
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/boatml/boat"
)

func main() {
	// The warehouse: 2000 customers, 300 products, and a purchases view
	// of 200k transactions computed on the fly.
	star, err := boat.NewStarWarehouse(2000, 300, 42)
	if err != nil {
		log.Fatal(err)
	}
	view := star.TrainingView(200_000, 7)
	fmt.Println("training database: SELECT ... FROM purchases JOIN customers JOIN products")
	fmt.Println("(never materialized: every scan streams the join)")
	fmt.Println()

	var io boat.IOStats
	model, err := boat.Grow(view, boat.Options{
		Method:   boat.Gini(),
		MaxDepth: 7,
		MinSplit: 200,
		Seed:     1,
		Stats:    &io,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()
	grown := model.Tree()
	fmt.Printf("BOAT scanned the join view %d times and grew %d nodes (depth %d)\n",
		io.Scans(), grown.NumNodes(), grown.Depth())

	// Pruning: MDL needs no extra data; reduced-error uses a fresh
	// validation stream from the same view definition.
	mdl, err := boat.PruneMDL(grown, boat.MDLPruneOptions{})
	if err != nil {
		log.Fatal(err)
	}
	validation := star.TrainingView(40_000, 99)
	rep, err := boat.PruneReducedError(grown, validation)
	if err != nil {
		log.Fatal(err)
	}

	test := star.TrainingView(40_000, 123)
	for _, entry := range []struct {
		name string
		tr   *boat.DecisionTree
	}{
		{"grown (unpruned)", grown},
		{"MDL-pruned", mdl},
		{"reduced-error-pruned", rep},
	} {
		m, err := boat.Evaluate(entry.tr, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %4d nodes  test-error %.4f  fraud-recall %.3f  fraud-precision %.3f\n",
			entry.name, entry.tr.NumNodes(), m.MisclassificationRate(),
			m.Recall(1), m.Precision(1))
	}

	// 5-fold cross-validation of the whole pipeline on a sampled subset.
	fmt.Println()
	sampleView := star.TrainingView(30_000, 5)
	tuples := readAll(sampleView)
	folds, err := boat.CrossValidate(sampleView.Schema(), tuples, 5,
		rand.New(rand.NewSource(3)),
		func(train boat.Source) (*boat.DecisionTree, error) {
			m, err := boat.Grow(train, boat.Options{
				Method: boat.Gini(), MaxDepth: 6, MinSplit: 100, Seed: 2,
			})
			if err != nil {
				return nil, err
			}
			defer m.Close()
			return boat.PruneMDL(m.Tree(), boat.MDLPruneOptions{})
		})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range folds {
		fmt.Printf("fold %d: error %.4f (%d nodes)\n",
			f.Fold, f.Matrix.MisclassificationRate(), f.Tree.NumNodes())
	}
}

func readAll(src boat.Source) []boat.Tuple {
	var out []boat.Tuple
	sc, err := src.Scan()
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()
	for {
		batch, err := sc.Next()
		if err != nil {
			return out
		}
		for _, tp := range batch {
			out = append(out, tp.Clone())
		}
	}
}
