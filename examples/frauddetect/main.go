// Fraud detection in a dynamic environment (the paper's motivating
// scenario for incremental maintenance, Section 4): a credit-card-style
// stream of transaction batches arrives continuously; the decision tree
// must always reflect the latest data without nightly full rebuilds.
//
// The example builds an initial BOAT model, then absorbs arriving chunks
// and expires old ones (a sliding window). After every update it verifies
// the paper's guarantee — the maintained tree is *identical* to a tree
// rebuilt from scratch on the current window — and reports how much work
// the update actually did.
//
//	go run ./examples/frauddetect
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/boatml/boat"
)

const (
	chunkSize = 20000
	window    = 3 // chunks kept in the training window
)

func main() {
	cfg := boat.SyntheticConfig{Function: 7, Noise: 0.05} // income/loan-driven concept
	opts := boat.Options{
		Method:   boat.Gini(),
		MaxDepth: 5,
		MinSplit: 200,
		Seed:     11,
	}
	growRef := boat.InMemoryOptions{Method: opts.Method, MaxDepth: opts.MaxDepth, MinSplit: opts.MinSplit}

	// Initial window: chunks 1..window.
	var windowChunks [][]boat.Tuple
	initial := make([]boat.Tuple, 0, window*chunkSize)
	for seed := int64(1); seed <= window; seed++ {
		chunk := mustChunk(cfg, seed)
		windowChunks = append(windowChunks, chunk)
		initial = append(initial, chunk...)
	}
	schema := boat.SyntheticSchema(0)
	model, err := boat.Grow(boat.NewMemSource(schema, initial), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer model.Close()
	fmt.Printf("initial model over %d transactions: %d nodes\n",
		len(initial), model.Tree().NumNodes())

	// Slide the window: each step inserts a fresh chunk and expires the
	// oldest one. Every few steps the transaction mix shifts (the paper's
	// "distribution change"): BOAT rebuilds only the affected subtrees.
	for step := int64(1); step <= 5; step++ {
		newCfg := cfg
		if step >= 4 {
			newCfg = boat.SyntheticConfig{Function: 7, Noise: 0.20} // fraud wave: noisier labels
		}
		fresh := mustChunk(newCfg, 100+step)
		expired := windowChunks[0]
		windowChunks = append(windowChunks[1:], fresh)

		start := time.Now()
		ins, err := model.Insert(boat.NewMemSource(schema, fresh))
		if err != nil {
			log.Fatal(err)
		}
		del, err := model.Delete(boat.NewMemSource(schema, expired))
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		// The guarantee: identical to a full rebuild on the window.
		var current []boat.Tuple
		for _, c := range windowChunks {
			current = append(current, c...)
		}
		ref := boat.GrowInMemory(schema, cloneAll(current), growRef)
		maintained := model.Tree()
		if !maintained.Equal(ref) {
			log.Fatalf("maintained tree diverged from rebuild: %s", maintained.Diff(ref))
		}
		fmt.Printf("step %d: +%d/-%d tuples in %v | rebuilt subtrees: %d, migrated stuck tuples: %d, refitted leaves: %d | tree: %d nodes | EXACT vs rebuild: yes\n",
			step, ins.TuplesSeen, del.TuplesSeen, elapsed.Round(time.Millisecond),
			ins.RebuiltSubtrees+del.RebuiltSubtrees,
			ins.MigratedTuples+del.MigratedTuples,
			ins.RefittedLeaves+del.RefittedLeaves,
			maintained.NumNodes())
	}
}

func mustChunk(cfg boat.SyntheticConfig, seed int64) []boat.Tuple {
	src, err := boat.Synthetic(cfg, chunkSize, seed)
	if err != nil {
		log.Fatal(err)
	}
	var out []boat.Tuple
	sc, err := src.Scan()
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()
	for {
		batch, err := sc.Next()
		if err != nil {
			return out
		}
		for _, tp := range batch {
			out = append(out, tp.Clone())
		}
	}
}

func cloneAll(ts []boat.Tuple) []boat.Tuple {
	out := make([]boat.Tuple, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}
