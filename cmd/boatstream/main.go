// Command boatstream soaks the streaming-update subsystem with the
// paper's dynamic environment (Section 4): a sliding window of data
// chunks over a maintained BOAT tree. Every round inserts the newest
// chunk and deletes the expired one, so the tree's net size stays
// constant while every update path — batch statistics, stuck-set
// bookkeeping, pending-removal cancellation on re-arriving data — stays
// exercised. Sustained throughput is reported as the run progresses.
//
// With -serve, a background goroutine classifies data through
// predict.Maintained for the whole soak, exercising the epoch-swapped
// serving path concurrently with the updates (run under `go run -race`
// in CI). With -paritycheck, the final maintained tree is compared
// node-for-node against a from-scratch build on the final window's
// dataset — the incremental-maintenance exactness guarantee.
//
// Observability: a diagnostics HTTP server runs on -listen (default
// :9090) exposing the metrics registry in Prometheus text format at
// /metrics plus /healthz, /readyz, /debug/vars and /debug/pprof; a
// background sampler feeds runtime gauges and windowed tuples/sec
// rates. -metricsjson dumps the registry as JSON at exit, and
// -metricsinterval additionally flushes it periodically (atomic
// temp+rename, so a killed soak still leaves metrics on disk).
// -logjson/-loglevel control the structured log stream on stderr.
//
// Usage:
//
//	boatstream -rounds 50
//	boatstream -rounds 200 -paritycheck
//	boatstream -serve -rounds 100 -metricsjson metrics.json
//	boatstream -serve -listen :9090 -metricsjson metrics.json -metricsinterval 5s
//	boatstream -rowupdates -rounds 50 -listen ""
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/predict"
	"github.com/boatml/boat/internal/split"
)

func main() {
	var (
		tuples       = flag.Int64("tuples", 40_000, "base training dataset size")
		chunkSize    = flag.Int64("chunk", 10_000, "tuples per sliding-window chunk")
		window       = flag.Int("window", 3, "live chunks besides the base data")
		rounds       = flag.Int("rounds", 50, "insert+delete rounds to replay")
		function     = flag.Int("function", 1, "generator function for the synthetic data")
		method       = flag.String("method", "gini", "split selection: gini | entropy | quest")
		threshold    = flag.Int64("threshold", 4000, "stop-at-threshold leaf family size")
		sample       = flag.Int("sample", 8000, "BOAT sample size (0 = auto)")
		seed         = flag.Int64("seed", 1, "sampling and generator seed")
		parallelism  = flag.Int("parallelism", 0, "worker goroutines (0 = GOMAXPROCS)")
		rowUpdates   = flag.Bool("rowupdates", false, "force the row-at-a-time update baseline instead of the columnar chunk router")
	blockShard   = flag.Bool("blockshard", false, "materialize the base dataset as a temporary columnar file and build it with block-range scan sharding")
		serve        = flag.Bool("serve", false, "serve predictions concurrently with the updates via the epoch-swapped snapshot path")
		parity       = flag.Bool("paritycheck", false, "after the soak, compare the maintained tree against a from-scratch build on the final window")
		metricsOut   = flag.String("metricsjson", "", `write the update metrics registry as JSON to this file ("-" = stdout)`)
		metricsEvery = flag.Duration("metricsinterval", 0, "flush -metricsjson to disk at this interval during the soak (0 = only at exit)")
		listen       = flag.String("listen", ":9090", `diagnostics HTTP server address for /metrics, /healthz, /readyz and /debug/pprof ("" disables)`)
		logJSON      = flag.Bool("logjson", false, "emit structured logs as JSON instead of text")
		logLevel     = flag.String("loglevel", "info", "log level: debug | info | warn | error")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, obs.LogConfig{JSON: *logJSON, Level: *logLevel})
	fatal(err)
	if *window < 1 || *rounds < 0 {
		fatal(fmt.Errorf("-window must be >= 1 and -rounds >= 0"))
	}
	m, err := methodFor(*method)
	fatal(err)

	// Twice as many distinct chunk contents as window slots: every round
	// inserts data the pending-removal buckets have not seen (the miss
	// path) and every chunk is eventually re-inserted after its deletion
	// was queued and drained (the cancellation path).
	slots := 2 * *window
	genCfg := gen.Config{Function: *function}
	base := gen.MustSource(genCfg, *tuples, *seed)
	chunks := make([]data.Source, slots)
	for i := range chunks {
		chunks[i] = gen.MustSource(genCfg, *chunkSize, *seed+int64(10+i))
	}

	if *metricsEvery > 0 && (*metricsOut == "" || *metricsOut == "-") {
		fatal(fmt.Errorf("-metricsinterval requires -metricsjson FILE"))
	}
	var st iostats.Stats
	var metrics *obs.Registry
	if *metricsOut != "" || *listen != "" {
		metrics = obs.NewRegistry()
	}
	cfg := core.Config{
		Method: m, StopThreshold: *threshold, StopAtThreshold: *threshold > 0,
		SampleSize: *sample, Seed: *seed, Parallelism: *parallelism,
		RowUpdates: *rowUpdates, BlockSharding: *blockShard,
		Stats:      &st, Metrics: metrics, Logger: logger,
	}
	// -blockshard: the generator source has no blocks to split, so the
	// base dataset is spooled to a columnar file first — the same tuples,
	// built through the block-parallel scan instead of the shared reader.
	buildSrc := data.Source(base)
	if *blockShard {
		dir, err := os.MkdirTemp("", "boatstream-base-")
		fatal(err)
		defer os.RemoveAll(dir)
		colPath := filepath.Join(dir, "base.boatc")
		_, err = data.WriteColFile(colPath, base, 0)
		fatal(err)
		colSrc, err := data.OpenColFile(colPath)
		fatal(err)
		buildSrc = colSrc
	}
	start := time.Now()
	bt, err := core.Build(buildSrc, cfg)
	fatal(err)
	defer bt.Close()
	logger.Info("base tree built", "seconds", time.Since(start).Seconds(),
		"tuples", *tuples, "row_updates", *rowUpdates, "block_sharded", *blockShard)

	// Live telemetry: the sampler feeds runtime gauges and windowed
	// tuples/sec rates into the registry; the diagnostics server exposes
	// it all over HTTP. Both are fully disabled (no goroutine, no socket)
	// when their inputs are off, and both shut down before the tree does.
	sampler := obs.StartSampler(metrics, obs.SamplerConfig{
		Rates:  []string{"update.tuples", "predict.tuples"},
		Logger: logger,
	})
	defer sampler.Close()
	diag, err := obs.StartServer(obs.ServerConfig{
		Addr: *listen, Registry: metrics, Ready: bt.Ready, Logger: logger,
	})
	fatal(err)
	defer diag.Close()
	if diag != nil {
		logger.Info("diagnostics server listening", "addr", diag.Addr())
	}

	// Reach the steady state: the window holds `window` live chunks.
	for i := 0; i < *window; i++ {
		_, err := bt.Insert(chunks[i])
		fatal(err)
	}

	// The concurrent server: classify chunk data through the maintained
	// predictor until the soak ends, counting calls and recording the
	// highest epoch served. Predictions never block on in-flight updates;
	// they read the last published snapshot.
	var served, lastEpoch atomic.Uint64
	done := make(chan struct{})
	stopped := make(chan struct{})
	if *serve {
		mp := predict.NewMaintained(bt, predict.Config{Parallelism: *parallelism, Metrics: metrics})
		go func() {
			defer close(stopped)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				_, epoch, err := mp.Predict(chunks[i%slots])
				if err != nil {
					logger.Error("concurrent predict failed", "err", err)
					return
				}
				served.Add(1)
				lastEpoch.Store(epoch)
			}
		}()
	} else {
		close(stopped)
	}

	// Periodic metrics flush: snapshot the registry to -metricsjson every
	// -metricsinterval so a soak killed mid-run still leaves its latest
	// metrics on disk. Each flush is atomic (temp file + rename), so a
	// scraper or a kill mid-write never observes a torn file.
	var flusherStopped chan struct{}
	if *metricsEvery > 0 {
		flusherStopped = make(chan struct{})
		go func() {
			defer close(flusherStopped)
			tick := time.NewTicker(*metricsEvery)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					if err := flushMetrics(metrics, *metricsOut); err != nil {
						logger.Warn("periodic metrics flush failed", "err", err)
					}
				}
			}
		}()
	}

	var total core.UpdateStats
	report := *rounds / 10
	if report < 1 {
		report = 1
	}
	soakStart := time.Now()
	for r := 0; r < *rounds; r++ {
		ins, err := bt.Insert(chunks[(*window+r)%slots])
		fatal(err)
		del, err := bt.Delete(chunks[r%slots])
		fatal(err)
		accumulate(&total, ins)
		accumulate(&total, del)
		if (r+1)%report == 0 || r+1 == *rounds {
			elapsed := time.Since(soakStart).Seconds()
			logger.Info("soak progress", "round", r+1, "rounds", *rounds,
				"tuples_per_sec", float64(r+1)*2*float64(*chunkSize)/elapsed,
				"rebuilt_subtrees", total.RebuiltSubtrees,
				"refitted_leaves", total.RefittedLeaves)
		}
	}
	elapsed := time.Since(soakStart).Seconds()
	close(done)
	<-stopped
	if flusherStopped != nil {
		<-flusherStopped
	}

	snap, err := bt.Snapshot()
	fatal(err)
	fmt.Printf("=== boatstream: %d rounds, window %d x %d tuples, base %d ===\n",
		*rounds, *window, *chunkSize, *tuples)
	mode := "chunked"
	if *rowUpdates {
		mode = "row"
	}
	fmt.Printf("update mode:        %s\n", mode)
	if elapsed > 0 {
		fmt.Printf("sustained rate:     %.0f tuples/sec (%.2fs total)\n",
			float64(*rounds)*2*float64(*chunkSize)/elapsed, elapsed)
	}
	fmt.Printf("update stats:       chunks=%d rebuilt_subtrees=%d rebuild_tuples=%d migrated=%d refitted_leaves=%d\n",
		total.Chunks, total.RebuiltSubtrees, total.RebuildTuples,
		total.MigratedTuples, total.RefittedLeaves)
	fmt.Printf("final epoch:        %d (tree: %d nodes, depth %d)\n",
		snap.Epoch, snap.Tree.NumNodes(), snap.Tree.Depth())
	if *serve {
		fmt.Printf("concurrent serving: %d predictions, last epoch served %d\n",
			served.Load(), lastEpoch.Load())
		if served.Load() == 0 {
			fatal(fmt.Errorf("concurrent server made no predictions"))
		}
	}
	fmt.Printf("io totals:          %s\n", st.Snapshot().String())
	fatal(bt.CheckConsistency())

	if *parity {
		fatal(parityCheck(bt, base, chunks, *window, *rounds, cfg, logger))
		fmt.Printf("parity check:       maintained tree identical to from-scratch rebuild\n")
	}
	os.Exit(dumpMetrics(metrics, *metricsOut))
}

// parityCheck rebuilds a tree from scratch on the exact dataset the
// maintained tree should now represent — the base data plus the window's
// live chunks — and requires the two trees to be node-for-node identical
// (the Section 4 exactness guarantee for Insert and Delete).
func parityCheck(bt *core.Tree, base data.Source, chunks []data.Source,
	window, rounds int, cfg core.Config, logger interface{ Info(string, ...any) }) error {
	start := time.Now()
	tuples, err := data.ReadAll(base)
	if err != nil {
		return err
	}
	for j := 0; j < window; j++ {
		ct, err := data.ReadAll(chunks[(rounds+j)%len(chunks)])
		if err != nil {
			return err
		}
		tuples = append(tuples, ct...)
	}
	cfg.Metrics = nil
	cfg.Stats = nil
	fresh, err := core.Build(data.NewMemSource(base.Schema(), tuples), cfg)
	if err != nil {
		return fmt.Errorf("parity rebuild: %w", err)
	}
	defer fresh.Close()
	maintained, rebuilt := bt.Tree(), fresh.Tree()
	logger.Info("parity rebuild finished", "seconds", time.Since(start).Seconds(),
		"tuples", len(tuples))
	if !maintained.Equal(rebuilt) {
		return fmt.Errorf("maintained tree diverged from from-scratch rebuild:\n%s",
			maintained.Diff(rebuilt))
	}
	return nil
}

func accumulate(total *core.UpdateStats, u core.UpdateStats) {
	total.TuplesSeen += u.TuplesSeen
	total.Chunks += u.Chunks
	total.RebuiltSubtrees += u.RebuiltSubtrees
	total.RebuildTuples += u.RebuildTuples
	total.MigratedTuples += u.MigratedTuples
	total.RefittedLeaves += u.RefittedLeaves
}

// dumpMetrics writes the registry as JSON to path ("" = disabled, "-" =
// stdout), returning a process exit code.
func dumpMetrics(metrics *obs.Registry, path string) int {
	if metrics == nil || path == "" {
		return 0
	}
	if path == "-" {
		if err := metrics.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "boatstream: metricsjson: %v\n", err)
			return 1
		}
		return 0
	}
	if err := flushMetrics(metrics, path); err != nil {
		fmt.Fprintf(os.Stderr, "boatstream: metricsjson: %v\n", err)
		return 1
	}
	return 0
}

// flushMetrics writes the registry snapshot to path atomically: the JSON
// lands in a sibling temp file, is synced, and replaces path with a
// rename — readers always see either the previous complete snapshot or
// the new one, never a torn write.
func flushMetrics(metrics *obs.Registry, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = metrics.WriteJSON(f)
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func methodFor(name string) (split.Method, error) {
	switch name {
	case "gini":
		return split.NewGini(), nil
	case "entropy":
		return split.NewEntropy(), nil
	case "quest":
		return split.NewQuestLike(), nil
	default:
		return nil, fmt.Errorf("unknown method %q (want gini, entropy or quest)", name)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "boatstream: %v\n", err)
		os.Exit(1)
	}
}
