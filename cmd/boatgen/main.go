// Command boatgen generates synthetic training databases with the
// generator of Agrawal et al. used by the paper's evaluation, writing
// them as binary dataset files (40-byte records in the compact format for
// the 9-attribute schema).
//
// It also writes (and converts existing datasets to) the block-compressed
// columnar format of internal/data: per-block column segments with
// small-integer encodings, CRC32-C checksums and min/max zone maps, which
// the training scans read through the asynchronous prefetch/decode
// pipeline.
//
// Usage:
//
//	boatgen -o train.boat -n 2000000 -function 1 -noise 0.05
//	boatgen -o shift.boat -n 500000 -function 1 -shifted
//	boatgen -o inst.boat  -n 500000 -instability
//	boatgen -o train.boatc -n 2000000 -function 1 -columnar
//	boatgen -convert train.boat -o train.boatc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/obs"
)

func main() {
	var (
		out         = flag.String("o", "", "output dataset file (required)")
		n           = flag.Int64("n", 1_000_000, "number of tuples")
		function    = flag.Int("function", 1, "Agrawal classification function (1-10)")
		noise       = flag.Float64("noise", 0, "label noise probability (0-1)")
		extra       = flag.Int("extra", 0, "extra non-predictive numeric attributes")
		shifted     = flag.Bool("shifted", false, "use the shifted-distribution variant of function 1 (Figure 14)")
		instability = flag.Bool("instability", false, "generate the two-minima instability dataset of Figure 12")
		seed        = flag.Int64("seed", 1, "generator seed")
		wide        = flag.Bool("wide", false, "use the float64 record format instead of the 4-byte compact format")
		columnar    = flag.Bool("columnar", false, "write the block-compressed columnar format instead of a row file")
		blockRows   = flag.Int("blockrows", 0, "columnar: rows per block (0 = default)")
		convert     = flag.String("convert", "", "convert this existing dataset file (either format) to -o instead of generating; -columnar is implied unless the name ends in .boat")
		logJSON     = flag.Bool("logjson", false, "emit structured logs as JSON instead of text")
		logLevel    = flag.String("loglevel", "info", "log level: debug | info | warn | error")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, obs.LogConfig{JSON: *logJSON, Level: *logLevel})
	if err != nil {
		fmt.Fprintf(os.Stderr, "boatgen: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "boatgen: -o is required")
		flag.Usage()
		os.Exit(2)
	}

	var src data.Source
	if *convert != "" {
		in, err := data.Open(*convert)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatgen: %v\n", err)
			os.Exit(1)
		}
		src = in
		if !strings.HasSuffix(*out, ".boat") {
			*columnar = true
		}
	} else if *instability {
		src = gen.InstabilitySource(*n, *seed)
	} else {
		s, err := gen.NewSource(gen.Config{
			Function:   *function,
			Noise:      *noise,
			ExtraAttrs: *extra,
			Shifted:    *shifted,
		}, *n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatgen: %v\n", err)
			os.Exit(1)
		}
		src = s
	}

	if *columnar {
		written, err := data.WriteColFile(*out, src, *blockRows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatgen: %v\n", err)
			os.Exit(1)
		}
		cs, err := data.OpenColFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatgen: verifying output: %v\n", err)
			os.Exit(1)
		}
		bpt := 0.0
		if written > 0 {
			bpt = float64(cs.SizeBytes()) / float64(written)
		}
		logger.Info("columnar dataset written", "path", *out, "tuples", written,
			"blocks", cs.Blocks(), "block_rows", cs.BlockRows(),
			"payload_bytes", cs.SizeBytes(), "bytes_per_tuple", bpt)
		return
	}
	format := data.FormatCompact
	if *wide {
		format = data.FormatWide
	}
	written, err := data.WriteFile(*out, src, format)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boatgen: %v\n", err)
		os.Exit(1)
	}
	fs, err := data.OpenFile(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boatgen: verifying output: %v\n", err)
		os.Exit(1)
	}
	logger.Info("dataset written", "path", *out, "tuples", written,
		"payload_bytes", fs.SizeBytes(), "bytes_per_tuple", format.TupleSize(fs.Schema()))
}
