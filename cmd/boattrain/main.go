// Command boattrain grows a decision tree over a binary dataset file with
// BOAT (or, for comparison, RainForest or the in-memory reference), prints
// the tree and the construction cost profile, and can persist the tree.
//
// Usage:
//
//	boattrain -input train.boat
//	boattrain -input train.boat -algo rf-hybrid -threshold 1500000
//	boattrain -input train.boat -method quest -save model.tree
//	boattrain -input train.boat -update chunk.boat
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/rainforest"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

func main() {
	var (
		input     = flag.String("input", "", "training dataset file (binary .boat, or .csv with -csv)")
		csvMode   = flag.Bool("csv", false, "treat -input as a CSV file (schema inferred; last column = class, override with -classcol)")
		csvHeader = flag.Bool("header", true, "CSV: first row is a header")
		classCol  = flag.Int("classcol", 0, "CSV: 1-based class column (0 = last)")
		algo      = flag.String("algo", "boat", "algorithm: boat | rf-hybrid | rf-vertical | inmem")
		method    = flag.String("method", "gini", "split selection: gini | entropy | quest")
		maxDepth  = flag.Int("maxdepth", 0, "depth limit (0 = unlimited)")
		minSplit  = flag.Int64("minsplit", 2, "minimum family size to split")
		threshold = flag.Int64("threshold", 0, "in-memory switch threshold (tuples; 0 = none)")
		stop      = flag.Bool("stop", false, "stop growth at the threshold instead of finishing in memory")
		sample    = flag.Int("sample", 0, "BOAT sample size (0 = auto)")
		seed      = flag.Int64("seed", 1, "sampling seed")
		avcBuffer = flag.Int64("avcbuffer", 3_000_000, "RainForest AVC buffer entries")
		save      = flag.String("save", "", "write the encoded tree to this file")
		saveModel = flag.String("savemodel", "", "write the full BOAT model (tree + statistics) to this file atomically (boat only)")
		update    = flag.String("update", "", "after building, insert this chunk file incrementally (boat only)")
		quiet     = flag.Bool("quiet", false, "do not print the tree itself")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "boattrain: -input is required")
		flag.Usage()
		os.Exit(2)
	}

	var src data.Source
	if *csvMode {
		ds, err := data.ReadCSVFile(*input, data.CSVOptions{HasHeader: *csvHeader, ClassColumn: *classCol})
		fatal(err)
		fmt.Printf("csv: %d tuples, %d attributes, classes %v\n",
			len(ds.Tuples), ds.Schema.NumAttrs(), ds.ClassNames)
		src = ds.Source()
	} else {
		fs, err := data.OpenFile(*input)
		fatal(err)
		src = fs
	}
	m, err := methodFor(*method)
	fatal(err)
	grow := inmem.Config{
		Method:          m,
		MaxDepth:        *maxDepth,
		MinSplit:        *minSplit,
		StopThreshold:   *threshold,
		StopAtThreshold: *stop,
	}

	var st iostats.Stats
	var tr *tree.Tree
	start := time.Now()
	switch *algo {
	case "boat":
		bt, err := core.Build(src, core.Config{
			Method: m, MaxDepth: *maxDepth, MinSplit: *minSplit,
			StopThreshold: *threshold, StopAtThreshold: *stop,
			SampleSize: *sample, Seed: *seed, Stats: &st,
		})
		fatal(err)
		defer bt.Close()
		built := time.Since(start)
		bs := bt.BuildStats()
		fmt.Printf("BOAT build: %.2fs | sample=%d coarse=%d disagreements=%d failures=%d stuck=%d frontier-rebuilds=%d\n",
			built.Seconds(), bs.SampleSize, bs.CoarseNodes, bs.Disagreements,
			bs.FailedNodes, bs.StuckTuples, bs.FrontierRebuilds)
		fmt.Printf("  failure breakdown: no-candidate=%d better-cat=%d bound=%d tie=%d moment=%d\n",
			bs.FailNoCandidate, bs.FailBetterCat, bs.FailBound, bs.FailTie, bs.FailMoment)
		if *update != "" {
			chunk, err := data.OpenFile(*update)
			fatal(err)
			ustart := time.Now()
			upd, err := bt.Insert(chunk)
			fatal(err)
			fmt.Printf("incremental insert: %.2fs | tuples=%d rebuilt-subtrees=%d migrated=%d refitted-leaves=%d\n",
				time.Since(ustart).Seconds(), upd.TuplesSeen, upd.RebuiltSubtrees,
				upd.MigratedTuples, upd.RefittedLeaves)
		}
		if *saveModel != "" {
			fatal(bt.SaveFile(*saveModel))
			fmt.Printf("saved model to %s\n", *saveModel)
		}
		tr = bt.Tree()
	case "rf-hybrid", "rf-vertical":
		t2, bs, err := rainforest.Build(src, rainforest.Config{
			Grow:             grow,
			AVCBufferEntries: *avcBuffer,
			Vertical:         *algo == "rf-vertical",
			Stats:            &st,
		})
		fatal(err)
		fmt.Printf("%s build: %.2fs | scans=%d levels=%d peak-avc=%d\n",
			*algo, time.Since(start).Seconds(), bs.Scans, bs.Levels, bs.PeakAVCEntries)
		tr = t2
	case "inmem":
		tuples, err := data.ReadAll(iostats.Tracked(src, &st))
		fatal(err)
		tr = inmem.Build(src.Schema(), tuples, grow)
		fmt.Printf("in-memory build: %.2fs\n", time.Since(start).Seconds())
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	fmt.Printf("io: %s\n", st.Snapshot())
	fmt.Printf("tree: %d nodes, %d leaves, depth %d\n", tr.NumNodes(), tr.NumLeaves(), tr.Depth())
	rate, err := tr.MisclassificationRate(src)
	fatal(err)
	fmt.Printf("training misclassification rate: %.4f\n", rate)
	if !*quiet {
		fmt.Print(tr)
	}
	if *save != "" {
		raw, err := tree.EncodeTree(tr)
		fatal(err)
		fatal(os.WriteFile(*save, raw, 0o644))
		fmt.Printf("saved tree (%d bytes) to %s\n", len(raw), *save)
	}
}

func methodFor(name string) (split.Method, error) {
	switch name {
	case "gini":
		return split.NewGini(), nil
	case "entropy":
		return split.NewEntropy(), nil
	case "quest":
		return split.NewQuestLike(), nil
	default:
		return nil, fmt.Errorf("unknown method %q (want gini, entropy or quest)", name)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "boattrain: %v\n", err)
		os.Exit(1)
	}
}
