// Command boattrain grows a decision tree over a binary dataset file with
// BOAT (or, for comparison, RainForest or the in-memory reference), prints
// the tree and the construction cost profile, and can persist the tree.
//
// Observability: -trace writes the build lifecycle as Chrome trace-event
// JSON (load it in chrome://tracing or Perfetto), -metricsjson dumps the
// build metrics registry, and -logjson/-loglevel control the structured
// log stream on stderr.
//
// Usage:
//
//	boattrain -input train.boat
//	boattrain -input train.boat -algo rf-hybrid -threshold 1500000
//	boattrain -input train.boat -method quest -save model.tree
//	boattrain -input train.boat -update chunk.boat
//	boattrain -input train.boat -trace trace.json -metricsjson metrics.json
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/predict"
	"github.com/boatml/boat/internal/rainforest"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

func main() {
	var (
		input       = flag.String("input", "", "training dataset file (binary .boat, or .csv with -csv)")
		csvMode     = flag.Bool("csv", false, "treat -input as a CSV file (schema inferred; last column = class, override with -classcol)")
		csvHeader   = flag.Bool("header", true, "CSV: first row is a header")
		classCol    = flag.Int("classcol", 0, "CSV: 1-based class column (0 = last)")
		algo        = flag.String("algo", "boat", "algorithm: boat | rf-hybrid | rf-vertical | inmem")
		method      = flag.String("method", "gini", "split selection: gini | entropy | quest")
		maxDepth    = flag.Int("maxdepth", 0, "depth limit (0 = unlimited)")
		minSplit    = flag.Int64("minsplit", 2, "minimum family size to split")
		threshold   = flag.Int64("threshold", 0, "in-memory switch threshold (tuples; 0 = none)")
		stop        = flag.Bool("stop", false, "stop growth at the threshold instead of finishing in memory")
		sample      = flag.Int("sample", 0, "BOAT sample size (0 = auto)")
		seed        = flag.Int64("seed", 1, "sampling seed")
		parallelism = flag.Int("parallelism", 0, "worker goroutines for the parallel build phases (0 = GOMAXPROCS)")
		pipeDepth   = flag.Int("pipedepth", 0, "columnar input: blocks read ahead by the scan pipeline (0 = default, negative = synchronous)")
		pipeWorkers = flag.Int("pipeworkers", 0, "columnar input: decode worker goroutines (0 = auto)")
		noZoneSkip  = flag.Bool("nozoneskip", false, "disable zone-map block skipping in the scan and update routers")
	blockShard  = flag.Bool("blockshard", false, "columnar input: shard the cleanup scan by contiguous block ranges, one private reader per worker (falls back to chunk sharding for row files)")
		avcBuffer   = flag.Int64("avcbuffer", 3_000_000, "RainForest AVC buffer entries")
		save        = flag.String("save", "", "write the encoded tree to this file")
		saveModel   = flag.String("savemodel", "", "write the full BOAT model (tree + statistics) to this file atomically (boat only)")
		update      = flag.String("update", "", "after building, insert this chunk file incrementally (boat only)")
		quiet       = flag.Bool("quiet", false, "do not print the tree itself")
		predictFile = flag.String("predict", "", "after building, classify this binary dataset file with the parallel batch predictor and log accuracy + throughput")
		predBench   = flag.Int("predictbench", 0, "rounds of predict benchmarking (tuple vs flat vs chunk vs parallel) over the -predict file, or the training input if none")
		traceOut    = flag.String("trace", "", "write the build lifecycle as Chrome trace-event JSON to this file (boat only)")
		metricsOut  = flag.String("metricsjson", "", `write the build metrics registry as JSON to this file ("-" = stdout; boat only)`)
		listen      = flag.String("listen", "", `diagnostics HTTP server address for /metrics and /debug/pprof during the build ("" disables)`)
		logJSON     = flag.Bool("logjson", false, "emit structured logs as JSON instead of text")
		logLevel    = flag.String("loglevel", "info", "log level: debug | info | warn | error")
	)
	flag.Parse()
	logger, err := obs.NewLogger(os.Stderr, obs.LogConfig{JSON: *logJSON, Level: *logLevel})
	fatal(err)
	if *input == "" {
		fmt.Fprintln(os.Stderr, "boattrain: -input is required")
		flag.Usage()
		os.Exit(2)
	}

	var src data.Source
	if *csvMode {
		ds, err := data.ReadCSVFile(*input, data.CSVOptions{HasHeader: *csvHeader, ClassColumn: *classCol})
		fatal(err)
		logger.Info("csv loaded", "tuples", len(ds.Tuples),
			"attributes", ds.Schema.NumAttrs(), "classes", len(ds.ClassNames))
		src = ds.Source()
	} else {
		fs, err := data.Open(*input)
		fatal(err)
		src = fs
	}
	m, err := methodFor(*method)
	fatal(err)
	grow := inmem.Config{
		Method:          m,
		MaxDepth:        *maxDepth,
		MinSplit:        *minSplit,
		StopThreshold:   *threshold,
		StopAtThreshold: *stop,
	}

	var st iostats.Stats
	var tracer *obs.Tracer
	var metrics *obs.Registry
	if *traceOut != "" {
		tracer = obs.NewTracer(&st)
	}
	if *metricsOut != "" || *listen != "" {
		metrics = obs.NewRegistry()
	}
	// Opt-in diagnostics server (default off for one-shot builds):
	// /metrics, probes and pprof over the build's registry, with the
	// runtime sampler feeding heap/GC/goroutine gauges. Both stay
	// completely dark — no goroutine, no socket — without -listen.
	if *listen != "" {
		sampler := obs.StartSampler(metrics, obs.SamplerConfig{Logger: logger})
		defer sampler.Close()
		diag, err := obs.StartServer(obs.ServerConfig{
			Addr: *listen, Registry: metrics, Logger: logger,
		})
		fatal(err)
		defer diag.Close()
	}

	var tr *tree.Tree
	start := time.Now()
	switch *algo {
	case "boat":
		bt, err := core.Build(src, core.Config{
			Method: m, MaxDepth: *maxDepth, MinSplit: *minSplit,
			StopThreshold: *threshold, StopAtThreshold: *stop,
			SampleSize: *sample, Seed: *seed, Parallelism: *parallelism,
			PipelineDepth: *pipeDepth, PipelineWorkers: *pipeWorkers,
			DisableZoneSkip: *noZoneSkip, BlockSharding: *blockShard,
			Stats:           &st, Trace: tracer, Metrics: metrics, Logger: logger,
		})
		fatal(err)
		defer bt.Close()
		bs := bt.BuildStats()
		logger.Info("BOAT build finished", "seconds", time.Since(start).Seconds(),
			"sample", bs.SampleSize, "coarse_nodes", bs.CoarseNodes,
			"disagreements", bs.Disagreements, "failed_nodes", bs.FailedNodes,
			"stuck_tuples", bs.StuckTuples, "frontier_rebuilds", bs.FrontierRebuilds)
		if bs.FailedNodes > 0 {
			logger.Info("verification failure breakdown",
				"no_candidate", bs.FailNoCandidate, "better_cat", bs.FailBetterCat,
				"bound", bs.FailBound, "tie", bs.FailTie, "moment", bs.FailMoment)
		}
		if *update != "" {
			chunk, err := data.Open(*update)
			fatal(err)
			ustart := time.Now()
			upd, err := bt.Insert(chunk)
			fatal(err)
			logger.Info("incremental insert finished",
				"seconds", time.Since(ustart).Seconds(), "tuples", upd.TuplesSeen,
				"rebuilt_subtrees", upd.RebuiltSubtrees, "migrated", upd.MigratedTuples,
				"refitted_leaves", upd.RefittedLeaves)
		}
		if *saveModel != "" {
			fatal(bt.SaveFile(*saveModel))
			logger.Info("model saved", "path", *saveModel)
		}
		tr = bt.Tree()
	case "rf-hybrid", "rf-vertical":
		t2, bs, err := rainforest.Build(src, rainforest.Config{
			Grow:             grow,
			AVCBufferEntries: *avcBuffer,
			Vertical:         *algo == "rf-vertical",
			Stats:            &st,
		})
		fatal(err)
		logger.Info("RainForest build finished", "algo", *algo,
			"seconds", time.Since(start).Seconds(), "scans", bs.Scans,
			"levels", bs.Levels, "peak_avc", bs.PeakAVCEntries)
		tr = t2
	case "inmem":
		tuples, err := data.ReadAll(iostats.Tracked(src, &st))
		fatal(err)
		tr = inmem.Build(src.Schema(), tuples, grow)
		logger.Info("in-memory build finished", "seconds", time.Since(start).Seconds())
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	logger.Info("io totals", "stats", st.Snapshot().String())
	logger.Info("tree summary", "nodes", tr.NumNodes(), "leaves", tr.NumLeaves(), "depth", tr.Depth())
	rate, err := tr.MisclassificationRate(src)
	fatal(err)
	logger.Info("training misclassification rate", "rate", rate)
	if !*quiet {
		fmt.Print(tr)
	}
	if *save != "" {
		raw, err := tree.EncodeTree(tr)
		fatal(err)
		fatal(os.WriteFile(*save, raw, 0o644))
		logger.Info("tree saved", "path", *save, "bytes", len(raw))
	}
	runPredict(logger, tr, src, *predictFile, *predBench, *parallelism, &st, tracer, metrics)
	writeObservability(logger, tracer, *traceOut, metrics, *metricsOut)
}

// runPredict serves the freshly built tree back over a dataset: -predict
// classifies the file with the parallel batch predictor (accuracy against
// the file's labels, throughput), and -predictbench times the four
// classification modes against each other.
func runPredict(logger *slog.Logger, tr *tree.Tree, trainSrc data.Source,
	predictFile string, rounds, parallelism int,
	st *iostats.Stats, tracer *obs.Tracer, metrics *obs.Registry) {
	if predictFile == "" && rounds <= 0 {
		return
	}
	src := trainSrc
	if predictFile != "" {
		fs, err := data.Open(predictFile)
		fatal(err)
		src = fs
	}
	cfg := predict.Config{
		Parallelism: parallelism, Compare: true,
		Stats: st, Trace: tracer, Metrics: metrics,
	}
	if predictFile != "" {
		p, err := predict.New(tr, cfg)
		fatal(err)
		res, err := p.Predict(src)
		fatal(err)
		logger.Info("prediction finished",
			"tuples", res.Tuples, "chunks", res.Chunks,
			"seconds", res.Seconds, "tuples_per_sec", res.TuplesPerSec,
			"accuracy", res.Matrix.Accuracy(),
			"misclassification_rate", res.Matrix.MisclassificationRate())
	}
	if rounds > 0 {
		b, err := predict.NewBench(tr, src, cfg)
		fatal(err)
		var tupleRate float64
		for _, mode := range []predict.Mode{
			predict.ModeTuple, predict.ModeFlat, predict.ModeChunk, predict.ModeParallel,
		} {
			m, err := b.Measure(mode, rounds)
			fatal(err)
			speedup := 0.0
			if mode == predict.ModeTuple {
				tupleRate = m.TuplesPerSec
			} else if tupleRate > 0 {
				speedup = m.TuplesPerSec / tupleRate
			}
			logger.Info("predict bench", "mode", m.Mode, "rounds", m.Rounds,
				"tuples_per_sec", m.TuplesPerSec, "allocs_per_tuple", m.AllocsPerTuple,
				"speedup_vs_tuple", speedup)
		}
	}
}

// writeObservability flushes the trace and metrics dumps requested by
// -trace and -metricsjson.
func writeObservability(logger *slog.Logger, tracer *obs.Tracer, traceOut string, metrics *obs.Registry, metricsOut string) {
	if tracer.Enabled() && traceOut != "" {
		f, err := os.Create(traceOut)
		fatal(err)
		fatal(tracer.WriteChromeTrace(f))
		fatal(f.Close())
		logger.Info("trace written", "path", traceOut)
	}
	if metrics.Enabled() && metricsOut != "" {
		if metricsOut == "-" {
			fatal(metrics.WriteJSON(os.Stdout))
			return
		}
		f, err := os.Create(metricsOut)
		fatal(err)
		fatal(metrics.WriteJSON(f))
		fatal(f.Close())
		logger.Info("metrics written", "path", metricsOut)
	}
}

func methodFor(name string) (split.Method, error) {
	switch name {
	case "gini":
		return split.NewGini(), nil
	case "entropy":
		return split.NewEntropy(), nil
	case "quest":
		return split.NewQuestLike(), nil
	default:
		return nil, fmt.Errorf("unknown method %q (want gini, entropy or quest)", name)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "boattrain: %v\n", err)
		os.Exit(1)
	}
}
