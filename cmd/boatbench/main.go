// Command boatbench regenerates the paper's evaluation (Section 5): every
// figure from 4 to 15 has an experiment that runs BOAT against the
// RainForest baselines (or the incremental-update comparison) on the
// corresponding synthetic workload and prints the measured series. Tree
// identity across all algorithms is verified as part of every run.
//
// Sizes are in the paper's "millions of tuples"; -unit maps one
// paper-million to actual tuples (default 50000, a 20x scale-down that
// runs in minutes on a laptop; -unit 1000000 reproduces the full-scale
// experiment).
//
// Usage:
//
//	boatbench -experiment fig4
//	boatbench -experiment all -unit 50000 -files
//	boatbench -experiment fig12
//	boatbench -benchjson BENCH_scan.json
//	boatbench -updatejson BENCH_update.json
//	boatbench -experiment fig4 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"time"

	"github.com/boatml/boat/internal/core"
	"github.com/boatml/boat/internal/data"
	"github.com/boatml/boat/internal/experiments"
	"github.com/boatml/boat/internal/gen"
	"github.com/boatml/boat/internal/inmem"
	"github.com/boatml/boat/internal/iostats"
	"github.com/boatml/boat/internal/obs"
	"github.com/boatml/boat/internal/predict"
	"github.com/boatml/boat/internal/split"
	"github.com/boatml/boat/internal/tree"
)

var runners = []struct {
	id    string
	descr string
	run   func(experiments.Config) ([]experiments.Row, error)
}{
	{"fig4", "Overall time vs DB size, Function 1", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunScalability("fig4", 1, c)
	}},
	{"fig5", "Overall time vs DB size, Function 6", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunScalability("fig5", 6, c)
	}},
	{"fig6", "Overall time vs DB size, Function 7", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunScalability("fig6", 7, c)
	}},
	{"fig7", "Time vs noise, Function 1", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunNoise("fig7", 1, c)
	}},
	{"fig8", "Time vs noise, Function 6", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunNoise("fig8", 6, c)
	}},
	{"fig9", "Time vs noise, Function 7", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunNoise("fig9", 7, c)
	}},
	{"fig10", "Time vs extra attributes, Function 1", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunExtraAttrs("fig10", 1, c)
	}},
	{"fig11", "Time vs extra attributes, Function 6", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunExtraAttrs("fig11", 6, c)
	}},
	{"fig13", "Dynamic environment: stable distribution", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunDynamic("fig13", experiments.DynamicStable, c)
	}},
	{"fig14", "Dynamic environment: distribution change", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunDynamic("fig14", experiments.DynamicChange, c)
	}},
	{"fig15", "Dynamic environment: small vs large update chunks", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunDynamic("fig15", experiments.DynamicChunkSize, c)
	}},
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "figure to reproduce: fig4..fig15, or all")
		unit       = flag.Int64("unit", 50_000, "tuples per paper-'million'")
		maxUnits   = flag.Int("maxunits", 10, "largest dataset in paper-millions")
		files      = flag.Bool("files", false, "materialize datasets as binary files and scan from disk")
		dir        = flag.String("dir", "", "scratch directory (default: system temp)")
		seed       = flag.Int64("seed", 1, "experiment seed")
		method     = flag.String("method", "gini", "split selection: gini | entropy | quest")
		para       = flag.Int("parallelism", 0, "worker goroutines for BOAT's parallel phases (0 = GOMAXPROCS, 1 = sequential; trees are identical at every setting)")
		verbose    = flag.Bool("v", true, "log progress")

		faults      = flag.Bool("faults", false, "run the storage fault-injection soak instead of a figure")
		faultBuilds = flag.Int("faultbuilds", 100, "number of fault-injected builds in the soak")
		faultSeed   = flag.Int64("faultseed", 1, "base seed for the injected fault sequence")

		benchJSON   = flag.String("benchjson", "", "run the cleanup-scan micro-benchmark (row vs chunk vs sharded vs block-sharded on the Fig-4/F1 workload) and write measurements to this JSON file instead of a figure")
		benchTuples = flag.Int64("benchtuples", 200_000, "dataset size for -benchjson")
		benchRounds = flag.Int("benchrounds", 3, "scan passes per mode for -benchjson")

		predictJSON = flag.String("predictjson", "", "run the classification micro-benchmark (per-tuple pointer walk vs flat walk vs chunked kernel vs parallel predictor on the Fig-4/F1 workload, depth >= 8) and write measurements to this JSON file instead of a figure")

		updateJSON   = flag.String("updatejson", "", "run the streaming-update micro-benchmark (row-at-a-time baseline vs columnar chunk router on the sliding-window dynamic-environment workload) and write measurements to this JSON file instead of a figure")
		updateRounds = flag.Int("updaterounds", 30, "insert+delete rounds per mode for -updatejson")

		ioJSON      = flag.String("iojson", "", "run the file-backed scan I/O benchmark (row file vs columnar block file, synchronous vs pipelined, zone skipping on/off) and write measurements to this JSON file instead of a figure")
		ioTuples    = flag.Int64("iotuples", 1_000_000, "dataset size for -iojson")
		ioBlockRows = flag.Int("ioblockrows", 0, "columnar block rows for -iojson (0 = default)")
		ioVerify    = flag.Bool("ioverify", true, "-iojson: also verify trees bit-identical across formats, pipeline depths {1,4} and Parallelism {1,8}")

		metricsJSON = flag.String("metricsjson", "", `write the accumulated BOAT metrics registry as JSON to this file ("-" = stdout)`)
		listen      = flag.String("listen", "", `diagnostics HTTP server address for /metrics and /debug/pprof during the run ("" disables)`)
		logJSON     = flag.Bool("logjson", false, "emit structured logs as JSON instead of text")
		logLevel    = flag.String("loglevel", "info", "log level: debug | info | warn | error")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceprofile = flag.String("traceprofile", "", "write a runtime execution trace to this file")
	)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, obs.LogConfig{JSON: *logJSON, Level: *logLevel})
	if err != nil {
		fmt.Fprintf(os.Stderr, "boatbench: %v\n", err)
		os.Exit(2)
	}
	stopProfiles, err := startProfiles(*cpuprofile, *traceprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boatbench: %v\n", err)
		os.Exit(2)
	}
	code := run(mainConfig{
		experiment: *experiment, unit: *unit, maxUnits: *maxUnits,
		files: *files, dir: *dir, seed: *seed, method: *method,
		para: *para, verbose: *verbose, logger: logger,
		faults: *faults, faultBuilds: *faultBuilds, faultSeed: *faultSeed,
		benchJSON: *benchJSON, benchTuples: *benchTuples, benchRounds: *benchRounds,
		predictJSON: *predictJSON,
		updateJSON:  *updateJSON, updateRounds: *updateRounds,
		ioJSON: *ioJSON, ioTuples: *ioTuples, ioBlockRows: *ioBlockRows, ioVerify: *ioVerify,
		metricsJSON: *metricsJSON, listen: *listen,
	})
	stopProfiles()
	if err := writeMemProfile(*memprofile); err != nil {
		fmt.Fprintf(os.Stderr, "boatbench: %v\n", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

// startProfiles begins CPU profiling and execution tracing when the
// corresponding paths are non-empty, returning a function that flushes
// both. Profiles must be flushed on every exit path, which is why main
// funnels all work through run() instead of calling os.Exit directly.
func startProfiles(cpuPath, tracePath string) (stop func(), err error) {
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return stop, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			stop()
			return func() {}, fmt.Errorf("traceprofile: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stop()
			return func() {}, fmt.Errorf("traceprofile: %w", err)
		}
		stops = append(stops, func() { trace.Stop(); f.Close() })
	}
	return stop, nil
}

// writeMemProfile snapshots the heap into path ("" = disabled).
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

type mainConfig struct {
	experiment string
	unit       int64
	maxUnits   int
	files      bool
	dir        string
	seed       int64
	method     string
	para       int
	verbose    bool
	logger     *slog.Logger

	faults      bool
	faultBuilds int
	faultSeed   int64

	benchJSON   string
	benchTuples int64
	benchRounds int
	predictJSON string

	updateJSON   string
	updateRounds int

	ioJSON      string
	ioTuples    int64
	ioBlockRows int
	ioVerify    bool

	metricsJSON string
	listen      string
}

func run(mc mainConfig) int {
	var m split.Method
	switch mc.method {
	case "gini":
		m = split.NewGini()
	case "entropy":
		m = split.NewEntropy()
	case "quest":
		m = split.NewQuestLike()
	default:
		fmt.Fprintf(os.Stderr, "boatbench: unknown method %q\n", mc.method)
		return 2
	}

	var metrics *obs.Registry
	if mc.metricsJSON != "" || mc.listen != "" {
		metrics = obs.NewRegistry()
	}
	// Opt-in diagnostics server (default off for benchmarks): /metrics,
	// probes and pprof over the run's registry, with the runtime sampler
	// feeding heap/GC/goroutine gauges while the benchmark executes. Both
	// stay completely dark — no goroutine, no socket — without -listen.
	if mc.listen != "" {
		sampler := obs.StartSampler(metrics, obs.SamplerConfig{Logger: mc.logger})
		defer sampler.Close()
		diag, err := obs.StartServer(obs.ServerConfig{
			Addr: mc.listen, Registry: metrics, Logger: mc.logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatbench: %v\n", err)
			return 2
		}
		defer diag.Close()
	}

	if mc.benchJSON != "" {
		code := runScanBench(mc, m, metrics)
		if code == 0 {
			code = dumpMetrics(metrics, mc.metricsJSON)
		}
		return code
	}

	if mc.predictJSON != "" {
		code := runPredictBench(mc, m, metrics)
		if code == 0 {
			code = dumpMetrics(metrics, mc.metricsJSON)
		}
		return code
	}

	if mc.updateJSON != "" {
		code := runUpdateBench(mc, m, metrics)
		if code == 0 {
			code = dumpMetrics(metrics, mc.metricsJSON)
		}
		return code
	}

	if mc.ioJSON != "" {
		code := runIOBench(mc, m)
		if code == 0 {
			code = dumpMetrics(metrics, mc.metricsJSON)
		}
		return code
	}

	cfg := experiments.Config{
		Unit: mc.unit, MaxUnits: mc.maxUnits, UseFiles: mc.files,
		Dir: mc.dir, Seed: mc.seed, Method: m, Parallelism: mc.para,
		Metrics: metrics,
	}
	if mc.verbose {
		cfg.Logger = mc.logger
	}
	defer func() { dumpMetrics(metrics, mc.metricsJSON) }()

	if mc.faults {
		fmt.Printf("=== fault soak: %d builds with injected transient storage faults ===\n", mc.faultBuilds)
		res, err := experiments.RunFaultSoak(cfg, mc.faultBuilds, mc.faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatbench: fault soak: %v\n", err)
			return 1
		}
		fmt.Printf("builds: %d | exact: %d | clean errors: %d\n", res.Builds, res.Exact, res.Failed)
		fmt.Printf("faults injected: %d (%d transient)\n", res.InjectedFaults, res.Transient)
		fmt.Printf("recoveries: spill-retries=%d scan-fallbacks=%d scan-retries=%d spill-rebuilds=%d\n",
			res.SpillRetries, res.ScanFallbacks, res.ScanRetries, res.SpillRebuilds)
		fmt.Println("every build produced the exact tree or a clean error; no temp files or budget leaked")
		return 0
	}

	want := strings.Split(mc.experiment, ",")
	matches := func(id string) bool {
		for _, w := range want {
			if w == "all" || w == id {
				return true
			}
		}
		return false
	}

	ran := 0
	for _, r := range runners {
		if !matches(r.id) {
			continue
		}
		ran++
		fmt.Printf("\n=== %s: %s ===\n", r.id, r.descr)
		rows, err := r.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatbench: %s: %v\n", r.id, err)
			return 1
		}
		experiments.FormatRows(os.Stdout, rows)
	}
	if matches("fig12") {
		ran++
		fmt.Printf("\n=== fig12: Instability of impurity-based split selection ===\n")
		res, err := experiments.RunInstability(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatbench: fig12: %v\n", err)
			return 1
		}
		fmt.Printf("root survived bootstrap intersection: %v\n", res.RootSurvived)
		if res.RootSurvived {
			fmt.Printf("bootstrap split points: %v\n", res.Points)
			fmt.Printf("points near the tied minima: %d near x=19, %d near x=60\n",
				res.NearLow, res.NearHigh)
			fmt.Printf("confidence interval: [%g, %g]\n", res.IntervalLo, res.IntervalHi)
		}
		fmt.Printf("coarse tree nodes: %d (growth stops where bootstrap trees disagree)\n", res.CoarseNodes)
		fmt.Printf("BOAT verification failures recovered from: %d\n", res.Failures)
		fmt.Printf("BOAT tree identical to reference: %v\n", res.BOATExact)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "boatbench: no experiment matches %q\n", mc.experiment)
		return 2
	}
	return 0
}

// dumpMetrics writes the registry as JSON to path ("" = disabled, "-" =
// stdout), returning a process exit code.
func dumpMetrics(metrics *obs.Registry, path string) int {
	if !metrics.Enabled() || path == "" {
		return 0
	}
	if path == "-" {
		if err := metrics.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "boatbench: metricsjson: %v\n", err)
			return 1
		}
		return 0
	}
	f, err := os.Create(path)
	if err == nil {
		err = metrics.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "boatbench: metricsjson: %v\n", err)
		return 1
	}
	return 0
}

// benchProvenance pins down what produced a -benchjson report: the
// machine-independent run configuration, the toolchain, and the source
// revision (from the binary's embedded VCS stamp, when built from a git
// checkout).
type benchProvenance struct {
	Parallelism   int    `json:"parallelism"`
	ScanChunkRows int    `json:"scan_chunk_rows"`
	Method        string `json:"method"`
	Seed          int64  `json:"seed"`
	GoVersion     string `json:"go_version"`
	GitSHA        string `json:"git_sha,omitempty"`
	GitModified   bool   `json:"git_modified,omitempty"`
}

// gitRevision extracts the vcs.revision/vcs.modified stamps the Go
// linker embeds when the binary is built inside a git checkout.
func gitRevision() (sha string, modified bool) {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "", false
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			sha = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	return sha, modified
}

// scanBenchReport is the JSON document -benchjson writes: one measurement
// per scan mode plus the chunk-vs-row headline ratios, the run's
// provenance, and the iostats accounting of every pass.
type scanBenchReport struct {
	Workload      string                 `json:"workload"`
	Tuples        int64                  `json:"tuples"`
	Rounds        int                    `json:"rounds"`
	GOMAXPROCS    int                    `json:"gomaxprocs"`
	Config        benchProvenance        `json:"config"`
	Modes               []core.ScanMeasurement `json:"modes"`
	IOStats             iostats.Snapshot       `json:"iostats"`
	ChunkSpeedup        float64                `json:"chunk_speedup_vs_row"`
	BlockShardedSpeedup float64                `json:"block_sharded_speedup_vs_row"`
	AllocsRatio         float64                `json:"row_allocs_per_chunk_alloc"`
	ChunkPerTuple       float64                `json:"chunk_allocs_per_tuple"`
}

// runScanBench times cleanup-scan passes per mode (row-at-a-time
// baseline, sequential columnar, chunk-sharded columnar, block-sharded
// columnar) over the Fig-4/F1 workload, prints a table with the iostats
// accounting, and writes the measurements as JSON. The generator output
// is materialized up front so the benchmark isolates the scan itself;
// the block-sharded mode reads the same tuples from a columnar file, the
// only source kind that can be split by block ranges.
func runScanBench(mc mainConfig, m split.Method, metrics *obs.Registry) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "boatbench: benchjson: %v\n", err)
		return 1
	}
	n := mc.benchTuples
	fmt.Printf("=== cleanup-scan benchmark: Fig-4/F1 workload, %d tuples, %d rounds/mode ===\n",
		n, mc.benchRounds)
	gsrc := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, n, mc.seed+41)
	tuples, err := data.ReadAll(gsrc)
	if err != nil {
		return fail(err)
	}
	src := data.NewMemSource(gsrc.Schema(), tuples)

	sha, modified := gitRevision()
	rep := scanBenchReport{
		Workload: "fig4-f1", Tuples: n, Rounds: mc.benchRounds,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config: benchProvenance{
			Parallelism:   mc.para,
			ScanChunkRows: data.DefaultChunkRows,
			Method:        m.Name(),
			Seed:          mc.seed,
			GoVersion:     runtime.Version(),
			GitSHA:        sha,
			GitModified:   modified,
		},
	}
	// The block-sharded mode needs a block-splittable source: the same
	// tuple sequence materialized as a columnar file (the in-memory source
	// serving the other modes has no blocks to split).
	colDir, err := os.MkdirTemp(mc.dir, "boatbench-scan-")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(colDir)
	colPath := filepath.Join(colDir, "scan.boatc")
	if _, err := data.WriteColFile(colPath, src, 0); err != nil {
		return fail(err)
	}

	var total iostats.Snapshot
	byMode := map[core.ScanMode]core.ScanMeasurement{}
	for _, mode := range []core.ScanMode{core.ScanModeRow, core.ScanModeChunk, core.ScanModeSharded, core.ScanModeBlockSharded} {
		benchSrc := data.Source(src)
		if mode == core.ScanModeBlockSharded {
			colSrc, err := data.OpenColFile(colPath)
			if err != nil {
				return fail(err)
			}
			benchSrc = colSrc
		}
		stats := &iostats.Stats{}
		bench, err := core.NewScanBench(benchSrc, core.Config{
			Method: m, MaxDepth: 6, MinSplit: 50, SampleSize: 2000,
			Seed: 7, TempDir: mc.dir, Parallelism: mc.para, Stats: stats,
			BlockSharding: mode == core.ScanModeBlockSharded,
			Metrics:       metrics, Logger: mc.logger,
		})
		if err != nil {
			return fail(err)
		}
		meas, err := bench.Measure(mode, mc.benchRounds)
		bench.Close()
		if err != nil {
			return fail(err)
		}
		rep.Modes = append(rep.Modes, meas)
		byMode[mode] = meas
		fmt.Printf("%-8s %12.0f tuples/sec  %10.3f allocs/tuple  %10.1f bytes/tuple\n",
			meas.Mode, meas.TuplesPerSec, meas.AllocsPerTuple, meas.BytesPerTuple)
		if mc.verbose {
			fmt.Printf("         iostats: %s\n", stats.Snapshot())
		}
		total = total.Add(stats.Snapshot())
	}
	rep.IOStats = total
	row, chunk := byMode[core.ScanModeRow], byMode[core.ScanModeChunk]
	if row.TuplesPerSec > 0 {
		rep.ChunkSpeedup = chunk.TuplesPerSec / row.TuplesPerSec
		rep.BlockShardedSpeedup = byMode[core.ScanModeBlockSharded].TuplesPerSec / row.TuplesPerSec
	}
	if chunk.AllocsPerTuple > 0 {
		rep.AllocsRatio = row.AllocsPerTuple / chunk.AllocsPerTuple
	}
	rep.ChunkPerTuple = chunk.AllocsPerTuple
	fmt.Printf("chunk vs row: %.2fx tuples/sec, allocs/tuple %.4f -> %.6f\n",
		rep.ChunkSpeedup, row.AllocsPerTuple, chunk.AllocsPerTuple)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(mc.benchJSON, append(out, '\n'), 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %s\n", mc.benchJSON)
	return 0
}

// updateMeasurement is one mode's result in an -updatejson report.
type updateMeasurement struct {
	Mode            string  `json:"mode"`
	Seconds         float64 `json:"seconds"`
	TuplesPerSec    float64 `json:"tuples_per_sec"`
	AllocsPerTuple  float64 `json:"allocs_per_tuple"`
	Chunks          int64   `json:"chunks"`
	RebuiltSubtrees int64   `json:"rebuilt_subtrees"`
	RefittedLeaves  int64   `json:"refitted_leaves"`
	MigratedTuples  int64   `json:"migrated_tuples"`
}

// updateBenchReport is the JSON document -updatejson writes: one
// measurement per update mode on the identical sliding-window workload,
// the chunked-vs-row headline ratio, and the run's provenance.
type updateBenchReport struct {
	Workload       string              `json:"workload"`
	BaseTuples     int64               `json:"base_tuples"`
	ChunkTuples    int64               `json:"chunk_tuples"`
	Window         int                 `json:"window"`
	Slots          int                 `json:"slots"`
	Rounds         int                 `json:"rounds"`
	GOMAXPROCS     int                 `json:"gomaxprocs"`
	Config         benchProvenance     `json:"config"`
	Modes          []updateMeasurement `json:"modes"`
	ChunkedSpeedup float64             `json:"chunked_speedup_vs_row"`
}

// runUpdateBench times sustained sliding-window maintenance — the
// boatstream workload: every round inserts the newest chunk and deletes
// the expired one, holding the tree's net size constant — once with the
// row-at-a-time baseline (Config.RowUpdates) and once with the columnar
// chunk router, and writes the measurements as JSON. Both modes replay
// the identical pre-generated chunk sequence against identically built
// trees; the maintained trees are guaranteed bit-identical either way
// (TestUpdateChunkedMatchesRow), so the comparison isolates update-path
// mechanics.
func runUpdateBench(mc mainConfig, m split.Method, metrics *obs.Registry) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "boatbench: updatejson: %v\n", err)
		return 1
	}
	const (
		baseTuples  = 40_000
		chunkTuples = 10_000
		window      = 3
		slots       = 2 * window
	)
	rounds := mc.updateRounds
	fmt.Printf("=== streaming-update benchmark: sliding window %d x %d tuples over %d base, %d rounds/mode ===\n",
		window, chunkTuples, baseTuples, rounds)
	base := gen.MustSource(gen.Config{Function: 1}, baseTuples, mc.seed)
	chunks := make([]data.Source, slots)
	for i := range chunks {
		chunks[i] = gen.MustSource(gen.Config{Function: 1}, chunkTuples, mc.seed+int64(10+i))
	}

	sha, modified := gitRevision()
	rep := updateBenchReport{
		Workload: "sliding-window-f1", BaseTuples: baseTuples,
		ChunkTuples: chunkTuples, Window: window, Slots: slots,
		Rounds: rounds, GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config: benchProvenance{
			Parallelism:   mc.para,
			ScanChunkRows: data.DefaultChunkRows,
			Method:        m.Name(),
			Seed:          mc.seed,
			GoVersion:     runtime.Version(),
			GitSHA:        sha,
			GitModified:   modified,
		},
	}
	byMode := map[string]updateMeasurement{}
	for _, mode := range []struct {
		name string
		row  bool
	}{{"row", true}, {"chunked", false}} {
		bt, err := core.Build(base, core.Config{
			Method: m, StopThreshold: 4000, StopAtThreshold: true,
			SampleSize: 8000, BootstrapTrees: 5, Seed: mc.seed,
			TempDir: mc.dir, Parallelism: mc.para, RowUpdates: mode.row,
			Metrics: metrics, Logger: mc.logger,
		})
		if err != nil {
			return fail(err)
		}
		var total core.UpdateStats
		add := func(u core.UpdateStats) {
			total.Chunks += u.Chunks
			total.RebuiltSubtrees += u.RebuiltSubtrees
			total.RefittedLeaves += u.RefittedLeaves
			total.MigratedTuples += u.MigratedTuples
		}
		for i := 0; i < window; i++ {
			if _, err := bt.Insert(chunks[i]); err != nil {
				bt.Close()
				return fail(err)
			}
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for r := 0; r < rounds; r++ {
			ins, err := bt.Insert(chunks[(window+r)%slots])
			if err != nil {
				bt.Close()
				return fail(err)
			}
			del, err := bt.Delete(chunks[r%slots])
			if err != nil {
				bt.Close()
				return fail(err)
			}
			add(ins)
			add(del)
		}
		seconds := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		bt.Close()
		streamed := float64(rounds) * 2 * chunkTuples
		meas := updateMeasurement{
			Mode: mode.name, Seconds: seconds,
			Chunks:          total.Chunks,
			RebuiltSubtrees: total.RebuiltSubtrees,
			RefittedLeaves:  total.RefittedLeaves,
			MigratedTuples:  total.MigratedTuples,
		}
		if seconds > 0 {
			meas.TuplesPerSec = streamed / seconds
		}
		if streamed > 0 {
			meas.AllocsPerTuple = float64(after.Mallocs-before.Mallocs) / streamed
		}
		rep.Modes = append(rep.Modes, meas)
		byMode[mode.name] = meas
		fmt.Printf("%-8s %12.0f tuples/sec  %10.3f allocs/tuple  rebuilt=%d refitted=%d\n",
			meas.Mode, meas.TuplesPerSec, meas.AllocsPerTuple,
			meas.RebuiltSubtrees, meas.RefittedLeaves)
	}
	row, chunked := byMode["row"], byMode["chunked"]
	if row.TuplesPerSec > 0 {
		rep.ChunkedSpeedup = chunked.TuplesPerSec / row.TuplesPerSec
	}
	fmt.Printf("chunked vs row: %.2fx tuples/sec\n", rep.ChunkedSpeedup)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(mc.updateJSON, append(out, '\n'), 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %s\n", mc.updateJSON)
	return 0
}

// ioScanMeasurement is one source/configuration's result in an -iojson
// report: the scan measurement plus the I/O accounting that motivates the
// columnar path — logical (decoded tuple) bytes vs bytes physically read,
// and the number of blocks the zone maps let the router skip.
type ioScanMeasurement struct {
	core.ScanMeasurement
	Source        string `json:"source"`
	LogicalBytes  int64  `json:"logical_bytes_read"`
	PhysicalBytes int64  `json:"physical_bytes_read"`
	BlocksSkipped int64  `json:"blocks_skipped"`
}

// ioBenchReport is the JSON document -iojson writes: the file-backed
// cleanup-scan throughput of the row format vs the columnar block format
// (synchronous and pipelined, zone skipping on and off), file sizes, and
// the cross-format tree-identity verification.
type ioBenchReport struct {
	Workload              string              `json:"workload"`
	Tuples                int64               `json:"tuples"`
	Rounds                int                 `json:"rounds"`
	Parallelism           int                 `json:"parallelism"`
	BlockRows             int                 `json:"block_rows"`
	GOMAXPROCS            int                 `json:"gomaxprocs"`
	Config                benchProvenance     `json:"config"`
	RowFileBytes          int64               `json:"row_file_bytes"`
	ColFileBytes          int64               `json:"col_file_bytes"`
	Compression           float64             `json:"row_bytes_per_col_byte"`
	Modes                          []ioScanMeasurement `json:"modes"`
	SyncSpeedupVsRow               float64             `json:"col_sync_speedup_vs_row"`
	PipelinedSpeedupVsRow          float64             `json:"col_pipelined_speedup_vs_row"`
	ZoneSkipSpeedup                float64             `json:"zone_skip_speedup"`
	BlockShardedSpeedupVsRow       float64             `json:"col_block_sharded_speedup_vs_row"`
	BlockShardedSpeedupVsPipelined float64             `json:"col_block_sharded_speedup_vs_pipelined"`
	TreeConfigsVerified   int                 `json:"tree_configs_verified"`
	TreesIdentical        bool                `json:"trees_identical"`
}

// runIOBench measures the file-backed cleanup scan end to end: the same
// F1 workload is materialized once as a row file and once as a columnar
// block file, and the sharded scan is timed over each — the columnar file
// synchronously decoded, behind the prefetch/decode pipeline, and with
// zone-map skipping disabled — isolating what the on-disk format, the
// pipeline, and the zone maps each buy. With -ioverify (default) it then
// builds trees from both files across pipeline depths {1, 4} and
// Parallelism {1, 8} and asserts every encoded tree is bit-identical.
func runIOBench(mc mainConfig, m split.Method) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "boatbench: iojson: %v\n", err)
		return 1
	}
	n := mc.ioTuples
	para := mc.para
	if para <= 0 {
		para = 8
	}
	rounds := mc.benchRounds
	dir := mc.dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "boatbench-io-")
		if err != nil {
			return fail(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	fmt.Printf("=== scan I/O benchmark: Fig-4/F1 workload, %d tuples, %d rounds/mode, Parallelism=%d ===\n",
		n, rounds, para)

	rowPath := filepath.Join(dir, "io-train.boat")
	colPath := filepath.Join(dir, "io-train.boatc")
	// The dataset is materialized clustered on age — F1's split attribute —
	// modeling the clustered fact table zone maps are designed for; both
	// files hold the identical tuple sequence, so the comparison (and the
	// tree-identity check) isolates the storage format.
	gsrc := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, n, mc.seed+47)
	tuples, err := data.ReadAll(gsrc)
	if err != nil {
		return fail(err)
	}
	sort.SliceStable(tuples, func(i, j int) bool {
		return tuples[i].Values[gen.AttrAge] < tuples[j].Values[gen.AttrAge]
	})
	if _, err := data.WriteFile(rowPath, data.NewMemSource(gsrc.Schema(), tuples), data.FormatCompact); err != nil {
		return fail(err)
	}
	tuples = nil
	rowFile, err := data.OpenFile(rowPath)
	if err != nil {
		return fail(err)
	}
	if _, err := data.WriteColFile(colPath, rowFile, mc.ioBlockRows); err != nil {
		return fail(err)
	}
	colFile, err := data.OpenColFile(colPath)
	if err != nil {
		return fail(err)
	}
	rowBytes, colBytes := rowFile.SizeBytes(), colFile.SizeBytes()
	fmt.Printf("row file: %d bytes | columnar file: %d bytes (%d blocks x %d rows) | %.2fx smaller\n",
		rowBytes, colBytes, colFile.Blocks(), colFile.BlockRows(), float64(rowBytes)/float64(colBytes))

	sha, modified := gitRevision()
	rep := ioBenchReport{
		Workload: "fig4-f1", Tuples: n, Rounds: rounds,
		Parallelism: para, BlockRows: colFile.BlockRows(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		RowFileBytes: rowBytes, ColFileBytes: colBytes,
		Compression: float64(rowBytes) / float64(colBytes),
		Config: benchProvenance{
			Parallelism:   para,
			ScanChunkRows: data.DefaultChunkRows,
			Method:        m.Name(),
			Seed:          mc.seed,
			GoVersion:     runtime.Version(),
			GitSHA:        sha,
			GitModified:   modified,
		},
	}

	modes := []struct {
		name     string
		path     string
		depth    int
		zoneSkip bool
		scanMode core.ScanMode
	}{
		{"row", rowPath, 0, true, core.ScanModeSharded},
		{"col-sync", colPath, -1, true, core.ScanModeSharded},
		{"col-pipelined", colPath, 0, true, core.ScanModeSharded},
		{"col-noskip", colPath, 0, false, core.ScanModeSharded},
		{"col-block-sharded", colPath, 0, true, core.ScanModeBlockSharded},
	}
	byMode := map[string]ioScanMeasurement{}
	for _, mode := range modes {
		src, err := data.Open(mode.path)
		if err != nil {
			return fail(err)
		}
		stats := &iostats.Stats{}
		reg := obs.NewRegistry()
		bench, err := core.NewScanBench(src, core.Config{
			Method: m, MaxDepth: 6, MinSplit: 50, SampleSize: 2000,
			Seed: 7, TempDir: dir, Parallelism: para, Stats: stats,
			PipelineDepth: mode.depth, DisableZoneSkip: !mode.zoneSkip,
			BlockSharding: mode.scanMode == core.ScanModeBlockSharded,
			Metrics:       reg, Logger: mc.logger,
		})
		if err != nil {
			return fail(err)
		}
		meas, err := bench.Measure(mode.scanMode, rounds)
		bench.Close()
		if err != nil {
			return fail(err)
		}
		snap := stats.Snapshot()
		im := ioScanMeasurement{
			ScanMeasurement: meas,
			Source:          mode.name,
			LogicalBytes:    snap.BytesRead,
			PhysicalBytes:   snap.PhysBytesRead,
			BlocksSkipped:   reg.Snapshot().Counters["scan.blocks_skipped"],
		}
		rep.Modes = append(rep.Modes, im)
		byMode[mode.name] = im
		fmt.Printf("%-14s %12.0f tuples/sec  phys/logical %.2f  blocks skipped %d\n",
			mode.name, im.TuplesPerSec, float64(im.PhysicalBytes)/float64(max64(im.LogicalBytes, 1)),
			im.BlocksSkipped)
	}
	row, sync, piped, noskip := byMode["row"], byMode["col-sync"], byMode["col-pipelined"], byMode["col-noskip"]
	blockSharded := byMode["col-block-sharded"]
	if row.TuplesPerSec > 0 {
		rep.SyncSpeedupVsRow = sync.TuplesPerSec / row.TuplesPerSec
		rep.PipelinedSpeedupVsRow = piped.TuplesPerSec / row.TuplesPerSec
		rep.BlockShardedSpeedupVsRow = blockSharded.TuplesPerSec / row.TuplesPerSec
	}
	if noskip.TuplesPerSec > 0 {
		rep.ZoneSkipSpeedup = piped.TuplesPerSec / noskip.TuplesPerSec
	}
	if piped.TuplesPerSec > 0 {
		rep.BlockShardedSpeedupVsPipelined = blockSharded.TuplesPerSec / piped.TuplesPerSec
	}
	fmt.Printf("columnar pipelined vs row: %.2fx | sync vs row: %.2fx | zone skipping: %.2fx | block-sharded vs pipelined: %.2fx\n",
		rep.PipelinedSpeedupVsRow, rep.SyncSpeedupVsRow, rep.ZoneSkipSpeedup, rep.BlockShardedSpeedupVsPipelined)

	if mc.ioVerify {
		verified, err := verifyIOTrees(rowPath, colPath, m, n, dir, mc.logger)
		if err != nil {
			return fail(err)
		}
		rep.TreeConfigsVerified = verified
		rep.TreesIdentical = true
		fmt.Printf("tree identity: %d format/depth/parallelism configurations bit-identical\n", verified)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(mc.ioJSON, append(out, '\n'), 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %s\n", mc.ioJSON)
	return 0
}

// verifyIOTrees builds trees over the row file and the columnar file —
// the latter chunk-sharded and block-sharded — across pipeline depths
// {1, 4} and Parallelism {1, 8} and returns the number of configurations
// checked, erroring unless every encoded tree is byte-identical to the
// row-format Parallelism=1 baseline.
func verifyIOTrees(rowPath, colPath string, m split.Method, n int64, dir string, logger *slog.Logger) (int, error) {
	build := func(path string, depth, para int, blockShard bool) ([]byte, error) {
		src, err := data.Open(path)
		if err != nil {
			return nil, err
		}
		bt, err := core.Build(src, core.Config{
			Method: m, MaxDepth: 8, MinSplit: 50, SampleSize: 2000,
			StopThreshold: n / 10, StopAtThreshold: true,
			Seed: 7, TempDir: dir, Parallelism: para,
			PipelineDepth: depth, BlockSharding: blockShard, Logger: logger,
		})
		if err != nil {
			return nil, err
		}
		defer bt.Close()
		return tree.EncodeTree(bt.Tree())
	}
	want, err := build(rowPath, 0, 1, false)
	if err != nil {
		return 0, err
	}
	checked := 1
	if got, err := build(rowPath, 0, 8, false); err != nil {
		return checked, err
	} else if !bytes.Equal(got, want) {
		return checked, fmt.Errorf("row-format tree differs at Parallelism=8")
	}
	checked++
	for _, blockShard := range []bool{false, true} {
		for _, depth := range []int{1, 4} {
			for _, para := range []int{1, 8} {
				got, err := build(colPath, depth, para, blockShard)
				if err != nil {
					return checked, err
				}
				if !bytes.Equal(got, want) {
					return checked, fmt.Errorf("columnar tree differs at depth=%d parallelism=%d blockShard=%v",
						depth, para, blockShard)
				}
				checked++
			}
		}
	}
	return checked, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// predictBenchReport is the JSON document -predictjson writes: one
// measurement per classification mode, the tree's shape, the headline
// speedups over the per-tuple pointer baseline, the determinism
// verification, and the run's provenance.
type predictBenchReport struct {
	Workload               string                `json:"workload"`
	Tuples                 int64                 `json:"tuples"`
	Rounds                 int                   `json:"rounds"`
	TreeDepth              int                   `json:"tree_depth"`
	TreeNodes              int                   `json:"tree_nodes"`
	TreeLeaves             int                   `json:"tree_leaves"`
	GOMAXPROCS             int                   `json:"gomaxprocs"`
	Config                 benchProvenance       `json:"config"`
	Modes                  []predict.Measurement `json:"modes"`
	FlatSpeedupVsTuple     float64               `json:"flat_speedup_vs_tuple"`
	ChunkSpeedupVsTuple    float64               `json:"chunk_speedup_vs_tuple"`
	ParallelSpeedupVsTuple float64               `json:"parallel_speedup_vs_tuple"`
	ChunkAllocsPerTuple    float64               `json:"chunk_allocs_per_tuple"`
	DeterminismConfigs     int                   `json:"determinism_configs_verified"`
}

// predictBenchChunkRows is the chunk row capacity the predict benchmark
// serves with. Larger chunks keep the batch router's per-node batches
// above the SIMD/descent cutoffs for more levels; 16K rows measured best
// on the Fig-4 tree depths this benchmark grows (a 16K-row column is
// 128KiB — still L2-resident — where 64K-row columns spill to L3).
const predictBenchChunkRows = 16384

// runPredictBench times full classification passes per mode over a tree
// grown on the Fig-4/F1 workload. The tree is grown deep (MaxDepth 12,
// MinSplit 4) so the per-tuple baseline pays a realistic number of levels
// per descent; the report records the actual depth reached. Before any
// timing, every (parallelism, chunk-rows) acceptance configuration is
// verified bit-identical to the pointer baseline.
func runPredictBench(mc mainConfig, m split.Method, metrics *obs.Registry) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "boatbench: predictjson: %v\n", err)
		return 1
	}
	n := mc.benchTuples
	fmt.Printf("=== classification benchmark: Fig-4/F1 workload, %d tuples, %d rounds/mode ===\n",
		n, mc.benchRounds)
	gsrc := gen.MustSource(gen.Config{Function: 1, Noise: 0.05}, n, mc.seed+43)
	tuples, err := data.ReadAll(gsrc)
	if err != nil {
		return fail(err)
	}
	src := data.NewMemSource(gsrc.Schema(), tuples)
	tr := inmem.Build(gsrc.Schema(), tuples, inmem.Config{
		Method: m, MaxDepth: 12, MinSplit: 4,
	})
	fmt.Printf("tree: %d nodes, %d leaves, depth %d\n", tr.NumNodes(), tr.NumLeaves(), tr.Depth())

	stats := &iostats.Stats{}
	bench, err := predict.NewBench(tr, src, predict.Config{
		Parallelism: mc.para, ChunkRows: predictBenchChunkRows,
		Stats: stats, Metrics: metrics,
	})
	if err != nil {
		return fail(err)
	}
	checked, err := bench.VerifyDeterminism()
	if err != nil {
		return fail(err)
	}
	fmt.Printf("determinism: %d parallelism/chunk-size configurations bit-identical to the pointer baseline\n", checked)

	sha, modified := gitRevision()
	rep := predictBenchReport{
		Workload: "fig4-f1", Tuples: n, Rounds: mc.benchRounds,
		TreeDepth: tr.Depth(), TreeNodes: tr.NumNodes(), TreeLeaves: tr.NumLeaves(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		DeterminismConfigs: checked,
		Config: benchProvenance{
			Parallelism:   mc.para,
			ScanChunkRows: predictBenchChunkRows,
			Method:        m.Name(),
			Seed:          mc.seed,
			GoVersion:     runtime.Version(),
			GitSHA:        sha,
			GitModified:   modified,
		},
	}
	byMode := map[predict.Mode]predict.Measurement{}
	for _, mode := range []predict.Mode{
		predict.ModeTuple, predict.ModeFlat, predict.ModeChunk, predict.ModeParallel,
	} {
		meas, err := bench.Measure(mode, mc.benchRounds)
		if err != nil {
			return fail(err)
		}
		rep.Modes = append(rep.Modes, meas)
		byMode[mode] = meas
		fmt.Printf("%-9s %12.0f tuples/sec  %10.6f allocs/tuple  %10.1f bytes/tuple\n",
			meas.Mode, meas.TuplesPerSec, meas.AllocsPerTuple, meas.BytesPerTuple)
	}
	base := byMode[predict.ModeTuple].TuplesPerSec
	if base > 0 {
		rep.FlatSpeedupVsTuple = byMode[predict.ModeFlat].TuplesPerSec / base
		rep.ChunkSpeedupVsTuple = byMode[predict.ModeChunk].TuplesPerSec / base
		rep.ParallelSpeedupVsTuple = byMode[predict.ModeParallel].TuplesPerSec / base
	}
	rep.ChunkAllocsPerTuple = byMode[predict.ModeChunk].AllocsPerTuple
	fmt.Printf("chunk vs tuple: %.2fx tuples/sec | flat vs tuple: %.2fx | parallel vs tuple: %.2fx\n",
		rep.ChunkSpeedupVsTuple, rep.FlatSpeedupVsTuple, rep.ParallelSpeedupVsTuple)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(mc.predictJSON, append(out, '\n'), 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %s\n", mc.predictJSON)
	return 0
}
