// Command boatbench regenerates the paper's evaluation (Section 5): every
// figure from 4 to 15 has an experiment that runs BOAT against the
// RainForest baselines (or the incremental-update comparison) on the
// corresponding synthetic workload and prints the measured series. Tree
// identity across all algorithms is verified as part of every run.
//
// Sizes are in the paper's "millions of tuples"; -unit maps one
// paper-million to actual tuples (default 50000, a 20x scale-down that
// runs in minutes on a laptop; -unit 1000000 reproduces the full-scale
// experiment).
//
// Usage:
//
//	boatbench -experiment fig4
//	boatbench -experiment all -unit 50000 -files
//	boatbench -experiment fig12
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/boatml/boat/internal/experiments"
	"github.com/boatml/boat/internal/split"
)

var runners = []struct {
	id    string
	descr string
	run   func(experiments.Config) ([]experiments.Row, error)
}{
	{"fig4", "Overall time vs DB size, Function 1", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunScalability("fig4", 1, c)
	}},
	{"fig5", "Overall time vs DB size, Function 6", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunScalability("fig5", 6, c)
	}},
	{"fig6", "Overall time vs DB size, Function 7", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunScalability("fig6", 7, c)
	}},
	{"fig7", "Time vs noise, Function 1", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunNoise("fig7", 1, c)
	}},
	{"fig8", "Time vs noise, Function 6", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunNoise("fig8", 6, c)
	}},
	{"fig9", "Time vs noise, Function 7", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunNoise("fig9", 7, c)
	}},
	{"fig10", "Time vs extra attributes, Function 1", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunExtraAttrs("fig10", 1, c)
	}},
	{"fig11", "Time vs extra attributes, Function 6", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunExtraAttrs("fig11", 6, c)
	}},
	{"fig13", "Dynamic environment: stable distribution", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunDynamic("fig13", experiments.DynamicStable, c)
	}},
	{"fig14", "Dynamic environment: distribution change", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunDynamic("fig14", experiments.DynamicChange, c)
	}},
	{"fig15", "Dynamic environment: small vs large update chunks", func(c experiments.Config) ([]experiments.Row, error) {
		return experiments.RunDynamic("fig15", experiments.DynamicChunkSize, c)
	}},
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "figure to reproduce: fig4..fig15, or all")
		unit       = flag.Int64("unit", 50_000, "tuples per paper-'million'")
		maxUnits   = flag.Int("maxunits", 10, "largest dataset in paper-millions")
		files      = flag.Bool("files", false, "materialize datasets as binary files and scan from disk")
		dir        = flag.String("dir", "", "scratch directory (default: system temp)")
		seed       = flag.Int64("seed", 1, "experiment seed")
		method     = flag.String("method", "gini", "split selection: gini | entropy | quest")
		para       = flag.Int("parallelism", 0, "worker goroutines for BOAT's parallel phases (0 = GOMAXPROCS, 1 = sequential; trees are identical at every setting)")
		verbose    = flag.Bool("v", true, "log progress")

		faults      = flag.Bool("faults", false, "run the storage fault-injection soak instead of a figure")
		faultBuilds = flag.Int("faultbuilds", 100, "number of fault-injected builds in the soak")
		faultSeed   = flag.Int64("faultseed", 1, "base seed for the injected fault sequence")
	)
	flag.Parse()

	var m split.Method
	switch *method {
	case "gini":
		m = split.NewGini()
	case "entropy":
		m = split.NewEntropy()
	case "quest":
		m = split.NewQuestLike()
	default:
		fmt.Fprintf(os.Stderr, "boatbench: unknown method %q\n", *method)
		os.Exit(2)
	}
	cfg := experiments.Config{
		Unit: *unit, MaxUnits: *maxUnits, UseFiles: *files,
		Dir: *dir, Seed: *seed, Method: m, Parallelism: *para,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	if *faults {
		fmt.Printf("=== fault soak: %d builds with injected transient storage faults ===\n", *faultBuilds)
		res, err := experiments.RunFaultSoak(cfg, *faultBuilds, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatbench: fault soak: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("builds: %d | exact: %d | clean errors: %d\n", res.Builds, res.Exact, res.Failed)
		fmt.Printf("faults injected: %d (%d transient)\n", res.InjectedFaults, res.Transient)
		fmt.Printf("recoveries: spill-retries=%d scan-fallbacks=%d scan-retries=%d spill-rebuilds=%d\n",
			res.SpillRetries, res.ScanFallbacks, res.ScanRetries, res.SpillRebuilds)
		fmt.Println("every build produced the exact tree or a clean error; no temp files or budget leaked")
		return
	}

	want := strings.Split(*experiment, ",")
	matches := func(id string) bool {
		for _, w := range want {
			if w == "all" || w == id {
				return true
			}
		}
		return false
	}

	ran := 0
	for _, r := range runners {
		if !matches(r.id) {
			continue
		}
		ran++
		fmt.Printf("\n=== %s: %s ===\n", r.id, r.descr)
		rows, err := r.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatbench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		experiments.FormatRows(os.Stdout, rows)
	}
	if matches("fig12") {
		ran++
		fmt.Printf("\n=== fig12: Instability of impurity-based split selection ===\n")
		res, err := experiments.RunInstability(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boatbench: fig12: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("root survived bootstrap intersection: %v\n", res.RootSurvived)
		if res.RootSurvived {
			fmt.Printf("bootstrap split points: %v\n", res.Points)
			fmt.Printf("points near the tied minima: %d near x=19, %d near x=60\n",
				res.NearLow, res.NearHigh)
			fmt.Printf("confidence interval: [%g, %g]\n", res.IntervalLo, res.IntervalHi)
		}
		fmt.Printf("coarse tree nodes: %d (growth stops where bootstrap trees disagree)\n", res.CoarseNodes)
		fmt.Printf("BOAT verification failures recovered from: %d\n", res.Failures)
		fmt.Printf("BOAT tree identical to reference: %v\n", res.BOATExact)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "boatbench: no experiment matches %q\n", *experiment)
		os.Exit(2)
	}
}
